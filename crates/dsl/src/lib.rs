//! # adt-dsl — a textual language for algebraic specifications
//!
//! The paper presents specifications in a fixed concrete form: a syntactic
//! specification (operation names, domains, ranges) followed by a list of
//! labelled axioms over typed free variables, with `error` and
//! `if-then-else` on right-hand sides. This crate gives that form a
//! machine-readable syntax, so every specification in the paper exists as
//! a source file (see the repository's `specs/` directory):
//!
//! ```text
//! -- The Queue of §3.
//! type Queue
//! param Item
//!
//! ops
//!   NEW:    -> Queue ctor
//!   ADD:    Queue, Item -> Queue ctor
//!   FRONT:  Queue -> Item
//!   REMOVE: Queue -> Queue
//!   IS_EMPTY?: Queue -> Bool
//!
//! vars
//!   q: Queue
//!   i: Item
//!
//! axioms
//!   [1] IS_EMPTY?(NEW) = true
//!   [2] IS_EMPTY?(ADD(q, i)) = false
//!   [3] FRONT(NEW) = error
//!   [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
//!   [5] REMOVE(NEW) = error
//!   [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
//! end
//! ```
//!
//! A file is a *module*: several `type` blocks (and `param` declarations)
//! sharing one name space, which is how the paper layers specifications
//! ("the solution … is simply to add another level to the specification by
//! supplying an algebraic specification of the abstract type Knowlist").
//! Lowering produces a single [`adt_core::Spec`] whose sorts of interest
//! are all the `type` blocks.
//!
//! # Example
//!
//! ```
//! let source = r#"
//! type Nat
//! ops
//!   ZERO: -> Nat ctor
//!   SUCC: Nat -> Nat ctor
//!   IS_ZERO?: Nat -> Bool
//! vars
//!   n: Nat
//! axioms
//!   [z1] IS_ZERO?(ZERO) = true
//!   [z2] IS_ZERO?(SUCC(n)) = false
//! end
//! "#;
//! let spec = adt_dsl::parse(source).map_err(|e| e.to_string())?;
//! assert_eq!(spec.name(), "Nat");
//! assert_eq!(spec.axioms().len(), 2);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod ast;
mod diag;
mod lexer;
mod lower;
mod parser;
mod print;
mod token;

pub use ast::{AxiomDecl, Item, Module, OpDecl, TermAst, TypeBlock, VarDecl};
pub use diag::{Diagnostic, Diagnostics, Span};
pub use lexer::lex;
pub use lower::{lower, lower_term_in};
pub use parser::{parse_module, parse_term_source};
pub use print::{print_spec, semantically_equal};

use adt_core::{Session, Spec, Term, TermId};

/// Parses and lowers a complete specification module.
///
/// # Errors
///
/// Returns every syntax and well-formedness problem found, each carrying a
/// source span; render them against the source with
/// [`Diagnostics::render`].
pub fn parse(source: &str) -> Result<Spec, Diagnostics> {
    let module = parse_module(source)?;
    lower(&module)
}

/// Parses a standalone term against a specification's signature — the
/// entry point for command-line tools and REPLs.
///
/// ```
/// let spec = adt_dsl::parse("type N\nops\n Z: -> N ctor\n S: N -> N ctor\nend")
///     .map_err(|e| e.to_string())?;
/// let term = adt_dsl::parse_term(&spec, "S(S(Z))").map_err(|e| e.to_string())?;
/// assert_eq!(term.depth(), 3);
/// # Ok::<(), String>(())
/// ```
///
/// # Errors
///
/// Returns lexical, syntactic, name-resolution and sort errors with spans
/// into `source`.
pub fn parse_term(spec: &Spec, source: &str) -> Result<Term, Diagnostics> {
    let ast = parse_term_source(source)?;
    lower_term_in(spec.sig(), &ast, None)
}

/// Parses and lowers a module straight into an [`adt_core::Session`]:
/// the axioms are compiled to head-indexed rules and both sides of every
/// axiom are interned into the session's arena, so the terms every
/// normalization touches first are hash-consed before the first query
/// runs.
///
/// ```
/// let session = adt_dsl::parse_session(
///     "type N\nops\n Z: -> N ctor\n S: N -> N ctor\nend",
/// )
/// .map_err(|e| e.to_string())?;
/// assert_eq!(session.spec().name(), "N");
/// # Ok::<(), String>(())
/// ```
///
/// # Errors
///
/// Returns every syntax and well-formedness problem found, as
/// [`parse`] does.
pub fn parse_session(source: &str) -> Result<Session, Diagnostics> {
    let session = Session::new(parse(source)?);
    for ax in session.spec().axioms() {
        session.intern(ax.lhs());
        session.intern(ax.rhs());
    }
    Ok(session)
}

/// Parses a standalone term against a session's signature and interns it
/// into the session's arena — the id-native counterpart of
/// [`parse_term`] for tools that keep one session alive per
/// specification.
///
/// ```
/// let session = adt_dsl::parse_session(
///     "type N\nops\n Z: -> N ctor\n S: N -> N ctor\nend",
/// )
/// .map_err(|e| e.to_string())?;
/// let id = adt_dsl::parse_term_id(&session, "S(S(Z))").map_err(|e| e.to_string())?;
/// // The same surface syntax interns to the same id.
/// let again = adt_dsl::parse_term_id(&session, "S( S( Z ) )").map_err(|e| e.to_string())?;
/// assert_eq!(id, again);
/// # Ok::<(), String>(())
/// ```
///
/// # Errors
///
/// Returns lexical, syntactic, name-resolution and sort errors with spans
/// into `source`.
pub fn parse_term_id(session: &Session, source: &str) -> Result<TermId, Diagnostics> {
    let ast = parse_term_source(source)?;
    let term = lower_term_in(session.sig(), &ast, None)?;
    Ok(session.intern(&term))
}
