//! Tokens of the specification language.

use std::fmt;

use crate::diag::Span;

/// The kind of a token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier: operation, sort, variable or label name.
    ///
    /// Identifiers start with a letter and may contain letters, digits,
    /// `_`, `.` and `'`, optionally ending in `?` — enough for the paper's
    /// `IS_EMPTY?`, `IS.NEWSTACK?`, `ENTERBLOCK'` and friends. Bare
    /// numbers are also accepted as identifiers so axiom labels can be
    /// `[1]`…`[9]` as in the paper.
    Ident(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// `type`
    KwType,
    /// `param`
    KwParam,
    /// `ops`
    KwOps,
    /// `vars`
    KwVars,
    /// `axioms`
    KwAxioms,
    /// `end`
    KwEnd,
    /// `if`
    KwIf,
    /// `then`
    KwThen,
    /// `else`
    KwElse,
    /// `error`
    KwError,
    /// `ctor`
    KwCtor,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Whether this token starts a new section or item (used for error
    /// recovery).
    pub fn is_section_start(&self) -> bool {
        matches!(
            self,
            TokenKind::KwType
                | TokenKind::KwParam
                | TokenKind::KwOps
                | TokenKind::KwVars
                | TokenKind::KwAxioms
                | TokenKind::KwEnd
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Equals => f.write_str("`=`"),
            TokenKind::KwType => f.write_str("`type`"),
            TokenKind::KwParam => f.write_str("`param`"),
            TokenKind::KwOps => f.write_str("`ops`"),
            TokenKind::KwVars => f.write_str("`vars`"),
            TokenKind::KwAxioms => f.write_str("`axioms`"),
            TokenKind::KwEnd => f.write_str("`end`"),
            TokenKind::KwIf => f.write_str("`if`"),
            TokenKind::KwThen => f.write_str("`then`"),
            TokenKind::KwElse => f.write_str("`else`"),
            TokenKind::KwError => f.write_str("`error`"),
            TokenKind::KwCtor => f.write_str("`ctor`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it is.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_starts() {
        assert!(TokenKind::KwOps.is_section_start());
        assert!(TokenKind::KwEnd.is_section_start());
        assert!(!TokenKind::Comma.is_section_start());
        assert!(!TokenKind::Ident("x".into()).is_section_start());
    }

    #[test]
    fn display_is_nonempty() {
        for kind in [
            TokenKind::Ident("ADD".into()),
            TokenKind::Arrow,
            TokenKind::KwAxioms,
            TokenKind::Eof,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }
}
