//! Lowering: AST to a validated [`adt_core::Spec`].
//!
//! Lowering is name resolution plus bidirectional sort checking. The only
//! genuinely bidirectional part is `error`: its sort comes from context
//! (`FRONT(NEW) = error` gives it sort Item because the left-hand side has
//! sort Item), exactly as in the paper's usage.

use adt_core::{Axiom, Signature, SortId, Spec, Term};

use crate::ast::{Item, Module, TermAst, TypeBlock};
use crate::diag::{Diagnostics, Span};

/// Lowers a parsed module to a specification.
///
/// # Errors
///
/// Returns every name-resolution and sort error found (the pass does not
/// stop at the first problem).
pub fn lower(module: &Module) -> Result<Spec, Diagnostics> {
    let mut diags = Diagnostics::new();
    let mut sig = Signature::new();
    let mut tois: Vec<SortId> = Vec::new();
    let mut params: Vec<SortId> = Vec::new();

    // Pass 1: sorts.
    for item in &module.items {
        match item {
            Item::Param { names } => {
                for (name, span) in names {
                    declare_param(&mut sig, &mut params, &tois, name, *span, &mut diags);
                }
            }
            Item::Type(block) => {
                match sig.add_sort(&block.name) {
                    Ok(id) => tois.push(id),
                    Err(e) => diags.error(block.name_span, e.to_string()),
                }
                for (name, span) in &block.params {
                    declare_param(&mut sig, &mut params, &tois, name, *span, &mut diags);
                }
            }
        }
    }

    // Pass 2: operations.
    for block in type_blocks(module) {
        for op in &block.ops {
            let mut arg_ids = Vec::with_capacity(op.args.len());
            let mut ok = true;
            for (arg, span) in &op.args {
                match sig.find_sort(arg) {
                    Some(id) => arg_ids.push(id),
                    None => {
                        diags.error(*span, format!("unknown sort `{arg}`"));
                        ok = false;
                    }
                }
            }
            let result = match sig.find_sort(&op.result.0) {
                Some(id) => id,
                None => {
                    diags.error(op.result.1, format!("unknown sort `{}`", op.result.0));
                    ok = false;
                    sig.bool_sort() // placeholder; errors already recorded
                }
            };
            if !ok {
                continue;
            }
            let added = if op.ctor {
                sig.add_ctor(&op.name, arg_ids, result)
            } else {
                sig.add_op(&op.name, arg_ids, result)
            };
            if let Err(e) = added {
                diags.error(op.span, e.to_string());
            }
        }
    }

    // Pass 3: variables.
    for block in type_blocks(module) {
        for var in &block.vars {
            let sort = match sig.find_sort(&var.sort.0) {
                Some(id) => id,
                None => {
                    diags.error(var.sort.1, format!("unknown sort `{}`", var.sort.0));
                    continue;
                }
            };
            for (name, span) in &var.names {
                if sig.find_op(name).is_some() {
                    diags.error(
                        *span,
                        format!("variable `{name}` would shadow the operation of the same name"),
                    );
                    continue;
                }
                if let Err(e) = sig.add_var(name, sort) {
                    diags.error(*span, e.to_string());
                }
            }
        }
    }

    // Pass 4: axioms.
    let mut axioms = Vec::new();
    for block in type_blocks(module) {
        for ax in &block.axioms {
            let Some(lhs) = lower_term(&sig, &ax.lhs, None, &mut diags) else {
                continue;
            };
            let lhs_sort = match lhs.sort(&sig) {
                Ok(s) => s,
                Err(e) => {
                    diags.error(ax.lhs.span(), e.to_string());
                    continue;
                }
            };
            let Some(rhs) = lower_term(&sig, &ax.rhs, Some(lhs_sort), &mut diags) else {
                continue;
            };
            let axiom = Axiom::new(ax.label.clone(), lhs, rhs);
            if let Err(e) = axiom.validate(&sig) {
                diags.error(ax.label_span, e.to_string());
                continue;
            }
            axioms.push(axiom);
        }
    }

    if !diags.is_empty() {
        return Err(diags);
    }

    let name = type_blocks(module)
        .next()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "Module".to_owned());
    Spec::from_parts(name, sig, axioms, tois, params).map_err(|e| {
        let mut ds = Diagnostics::new();
        ds.error(Span::default(), e.to_string());
        ds
    })
}

/// Lowers a single surface term against an existing signature, with an
/// optional expected sort (needed to give `error` a sort).
///
/// This is the entry point used by tools that accept terms on the command
/// line or in a REPL, against a specification that already exists.
///
/// # Errors
///
/// Returns name-resolution and sort errors, with spans into `ast`'s
/// original source.
pub fn lower_term_in(
    sig: &Signature,
    ast: &TermAst,
    expected: Option<SortId>,
) -> Result<Term, Diagnostics> {
    let mut diags = Diagnostics::new();
    match lower_term(sig, ast, expected, &mut diags) {
        Some(term) if diags.is_empty() => Ok(term),
        _ => Err(diags),
    }
}

fn type_blocks(module: &Module) -> impl Iterator<Item = &TypeBlock> {
    module.items.iter().filter_map(|i| match i {
        Item::Type(b) => Some(b),
        Item::Param { .. } => None,
    })
}

fn declare_param(
    sig: &mut Signature,
    params: &mut Vec<SortId>,
    tois: &[SortId],
    name: &str,
    span: Span,
    diags: &mut Diagnostics,
) {
    if let Some(existing) = sig.find_sort(name) {
        // Re-declaring an existing *parameter* is idempotent (several type
        // blocks may share Item); clashing with a defined type is an error.
        if params.contains(&existing) {
            return;
        }
        let role = if tois.contains(&existing) {
            "a defined type"
        } else {
            "a built-in sort"
        };
        diags.error(
            span,
            format!("parameter sort `{name}` is already declared as {role}"),
        );
        return;
    }
    match sig.add_sort(name) {
        Ok(id) => params.push(id),
        Err(e) => diags.error(span, e.to_string()),
    }
}

fn lower_term(
    sig: &Signature,
    ast: &TermAst,
    expected: Option<SortId>,
    diags: &mut Diagnostics,
) -> Option<Term> {
    let term = match ast {
        TermAst::Error(span) => match expected {
            Some(sort) => Term::Error(sort),
            None => {
                diags.error(
                    *span,
                    "cannot determine the sort of `error` here (left-hand sides may not be `error`)",
                );
                return None;
            }
        },
        TermAst::Name(name, span) => {
            if let Some(v) = sig.find_var(name) {
                Term::Var(v)
            } else if let Some(op) = sig.find_op(name) {
                if sig.op(op).arity() != 0 {
                    diags.error(
                        *span,
                        format!(
                            "operation `{name}` takes {} argument(s); write `{name}(…)`",
                            sig.op(op).arity()
                        ),
                    );
                    return None;
                }
                Term::App(op, Vec::new())
            } else {
                diags.error(*span, format!("unknown name `{name}`"));
                return None;
            }
        }
        TermAst::App {
            name,
            name_span,
            args,
        } => {
            let Some(op) = sig.find_op(name) else {
                diags.error(*name_span, format!("unknown operation `{name}`"));
                return None;
            };
            let info = sig.op(op);
            if info.arity() != args.len() {
                diags.error(
                    *name_span,
                    format!(
                        "operation `{name}` expects {} argument(s) but was given {}",
                        info.arity(),
                        args.len()
                    ),
                );
                return None;
            }
            let arg_sorts: Vec<SortId> = info.args().to_vec();
            let mut lowered = Vec::with_capacity(args.len());
            for (arg, sort) in args.iter().zip(arg_sorts) {
                lowered.push(lower_term(sig, arg, Some(sort), diags)?);
            }
            Term::App(op, lowered)
        }
        TermAst::If {
            cond,
            then_branch,
            else_branch,
            span,
        } => {
            let cond_t = lower_term(sig, cond, Some(sig.bool_sort()), diags)?;
            // If the context gives no expected sort, infer it from
            // whichever branch determines one (so `error` may appear in
            // either branch, as it does in the paper's axioms).
            let branch_sort = match expected {
                Some(s) => s,
                None => {
                    let mut scratch = Diagnostics::new();
                    let inferred = lower_term(sig, then_branch, None, &mut scratch)
                        .and_then(|t| t.sort(sig).ok())
                        .or_else(|| {
                            let mut scratch = Diagnostics::new();
                            lower_term(sig, else_branch, None, &mut scratch)
                                .and_then(|t| t.sort(sig).ok())
                        });
                    match inferred {
                        Some(s) => s,
                        None => {
                            diags.error(
                                *span,
                                "cannot determine the sort of this conditional: neither \
                                 branch has a context-free sort (e.g. both are `error`)",
                            );
                            return None;
                        }
                    }
                }
            };
            let then_t = lower_term(sig, then_branch, Some(branch_sort), diags)?;
            let else_t = lower_term(sig, else_branch, Some(branch_sort), diags)?;
            Term::ite(cond_t, then_t, else_t)
        }
    };
    // Check the result against the context's expectation.
    if let Some(expected_sort) = expected {
        match term.sort(sig) {
            Ok(actual) => {
                if actual != expected_sort {
                    diags.error(
                        ast.span(),
                        format!(
                            "sort mismatch: expected `{}`, found `{}`",
                            sig.sort(expected_sort).name(),
                            sig.sort(actual).name()
                        ),
                    );
                    return None;
                }
            }
            Err(e) => {
                diags.error(ast.span(), e.to_string());
                return None;
            }
        }
    }
    Some(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn lower_src(src: &str) -> Result<Spec, Diagnostics> {
        lower(&parse_module(src).expect("parse"))
    }

    const QUEUE_SRC: &str = r#"
type Queue
param Item
ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  REMOVE: Queue -> Queue
  IS_EMPTY?: Queue -> Bool
vars
  q: Queue
  i: Item
axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#;

    #[test]
    fn lowers_the_queue_spec() {
        let spec = lower_src(QUEUE_SRC).unwrap();
        assert_eq!(spec.name(), "Queue");
        assert_eq!(spec.axioms().len(), 6);
        assert_eq!(spec.tois().len(), 1);
        assert_eq!(spec.params().len(), 1);
        let add = spec.sig().find_op("ADD").unwrap();
        assert!(spec.sig().op(add).is_constructor());
        let front = spec.sig().find_op("FRONT").unwrap();
        assert!(!spec.sig().op(front).is_constructor());
        // The `error` on axiom 3's right got the sort of FRONT's range.
        let ax3 = spec.axiom_labelled("3").unwrap();
        let item = spec.sig().find_sort("Item").unwrap();
        assert_eq!(ax3.rhs(), &Term::Error(item));
    }

    #[test]
    fn unknown_sort_in_op_is_reported_with_span() {
        let src = "type T\nops\n  F: Qeue -> T\n  C: -> T ctor\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("unknown sort `Qeue`"));
        let rendered = err.render(src);
        assert!(rendered.contains("^^^^"), "{rendered}");
    }

    #[test]
    fn unknown_operation_in_axiom_is_reported() {
        let src = "type T\nops\n  C: -> T ctor\n  F: T -> T\naxioms\n  [a] F(C) = G(C)\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("unknown operation `G`"));
    }

    #[test]
    fn sort_mismatch_in_axiom_is_reported() {
        let src = "type T\nparam U\nops\n  C: -> T ctor\n  D: -> U ctor\n  F: T -> T\naxioms\n  [a] F(D) = C\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("expected `T`, found `U`"), "{err}");
    }

    #[test]
    fn arity_errors_are_reported() {
        let src = "type T\nops\n  C: -> T ctor\n  F: T, T -> T\naxioms\n  [a] F(C) = C\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("expects 2 argument(s)"));
    }

    #[test]
    fn nullary_op_used_with_explicit_parens_is_fine() {
        let src = "type T\nops\n  C: -> T ctor\n  F: T -> T\naxioms\n  [a] F(C()) = C\nend";
        let spec = lower_src(src).unwrap();
        assert_eq!(spec.axioms().len(), 1);
    }

    #[test]
    fn non_nullary_op_as_bare_name_is_reported() {
        let src = "type T\nops\n  C: -> T ctor\n  F: T -> T\naxioms\n  [a] F(F) = C\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("write `F(…)`"), "{err}");
    }

    #[test]
    fn variable_shadowing_operation_is_rejected() {
        let src = "type T\nops\n  C: -> T ctor\nvars\n  C: T\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("shadow"));
    }

    #[test]
    fn multiple_blocks_share_the_name_space() {
        let src = r#"
type Stack
param Elem
ops
  NEWSTACK: -> Stack ctor
  PUSH: Stack, Elem -> Stack ctor
  TOP: Stack -> Elem
vars
  s: Stack
  e: Elem
axioms
  [t1] TOP(NEWSTACK) = error
  [t2] TOP(PUSH(s, e)) = e
end

type Pair
ops
  MKPAIR: Stack, Stack -> Pair ctor
  FIRST: Pair -> Stack
vars
  s1, s2: Stack
axioms
  [p1] FIRST(MKPAIR(s1, s2)) = s1
end
"#;
        let spec = lower_src(src).unwrap();
        assert_eq!(spec.name(), "Stack");
        assert_eq!(spec.tois().len(), 2);
        assert_eq!(spec.axioms().len(), 3);
        // The shared param was declared once.
        assert_eq!(spec.params().len(), 1);
    }

    #[test]
    fn shared_param_across_blocks_is_idempotent() {
        let src = r#"
type A
param Item
ops
  MKA: Item -> A ctor
end
type B
param Item
ops
  MKB: Item -> B ctor
end
"#;
        let spec = lower_src(src).unwrap();
        assert_eq!(spec.params().len(), 1);
    }

    #[test]
    fn param_clashing_with_type_is_reported() {
        let src = "type T\nops\n C: -> T ctor\nend\nparam T";
        let err = lower_src(src).unwrap_err();
        assert!(err
            .to_string()
            .contains("already declared as a defined type"));
    }

    #[test]
    fn toi_without_constructors_is_a_module_error() {
        let src = "type T\nops\n  F: T -> T\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("no constructors"));
    }

    #[test]
    fn error_on_lhs_is_rejected() {
        let src = "type T\nops\n  C: -> T ctor\naxioms\n  [a] error = C\nend";
        let err = lower_src(src).unwrap_err();
        assert!(err.to_string().contains("left-hand sides"), "{err}");
    }

    #[test]
    fn if_with_error_branch_infers_from_then() {
        let src = r#"
type T
ops
  C: -> T ctor
  P?: T -> Bool
  F: T -> T
vars
  x: T
axioms
  [a] F(C) = if P?(C) then C else error
end
"#;
        let spec = lower_src(src).unwrap();
        let ax = spec.axiom_labelled("a").unwrap();
        let t = spec.sig().find_sort("T").unwrap();
        let Term::Ite(ite) = ax.rhs() else { panic!() };
        assert_eq!(ite.else_branch, Term::Error(t));
    }
}
