//! The parser: tokens to AST, with error recovery.
//!
//! Recovery is at item granularity: a malformed operation declaration or
//! axiom is reported and skipped, and parsing resumes at the next
//! declaration, axiom, or section keyword — so one typo does not hide the
//! rest of the file's problems.

use crate::ast::{AxiomDecl, Item, Module, OpDecl, TermAst, TypeBlock, VarDecl};
use crate::diag::{Diagnostics, Span};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a module from source text.
///
/// # Errors
///
/// Returns all lexical and syntactic problems found.
pub fn parse_module(source: &str) -> Result<Module, Diagnostics> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
        term_depth: 0,
    };
    let module = p.module();
    if p.diags.is_empty() {
        Ok(module)
    } else {
        Err(p.diags)
    }
}

/// Parses a standalone term (as typed on a command line or in a REPL).
///
/// # Errors
///
/// Returns all lexical and syntactic problems found, including trailing
/// input after the term.
pub fn parse_term_source(source: &str) -> Result<TermAst, Diagnostics> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
        term_depth: 0,
    };
    let term = p.term();
    if !p.at_eof() {
        let t = p.peek().clone();
        p.diags
            .error(t.span, format!("unexpected {} after the term", t.kind));
    }
    match term {
        Some(t) if p.diags.is_empty() => Ok(t),
        _ => Err(p.diags),
    }
}

/// Maximum term-nesting depth the recursive-descent parser accepts;
/// beyond this it reports an error instead of risking the thread stack.
/// (Debug-build parser frames are on the order of a kilobyte, and test
/// threads get 2 MiB stacks, so the limit is deliberately conservative —
/// three orders of magnitude above any human-written axiom.)
const MAX_TERM_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
    term_depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Option<Token> {
        if self.peek_kind() == kind {
            Some(self.advance())
        } else {
            let t = self.peek().clone();
            self.diags
                .error(t.span, format!("expected {what}, found {}", t.kind));
            None
        }
    }

    fn ident(&mut self, what: &str) -> Option<(String, Span)> {
        match self.peek_kind() {
            TokenKind::Ident(_) => {
                let t = self.advance();
                let TokenKind::Ident(name) = t.kind else {
                    unreachable!();
                };
                Some((name, t.span))
            }
            _ => {
                let t = self.peek().clone();
                self.diags
                    .error(t.span, format!("expected {what}, found {}", t.kind));
                None
            }
        }
    }

    /// Skips tokens until a section keyword, a `[` (next axiom), or EOF.
    /// Always consumes at least one token so recovery makes progress.
    fn recover(&mut self) {
        if self.at_eof() {
            return;
        }
        self.advance();
        while !self.at_eof()
            && !self.peek_kind().is_section_start()
            && !matches!(self.peek_kind(), TokenKind::LBracket)
        {
            self.advance();
        }
    }

    fn module(&mut self) -> Module {
        let mut items = Vec::new();
        while !self.at_eof() {
            match self.peek_kind() {
                TokenKind::KwParam => {
                    self.advance();
                    let mut names = Vec::new();
                    loop {
                        match self.ident("a parameter sort name") {
                            Some(n) => names.push(n),
                            None => {
                                self.recover();
                                break;
                            }
                        }
                        if matches!(self.peek_kind(), TokenKind::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                    items.push(Item::Param { names });
                }
                TokenKind::KwType => {
                    if let Some(block) = self.type_block() {
                        items.push(Item::Type(block));
                    }
                }
                _ => {
                    let t = self.peek().clone();
                    self.diags.error(
                        t.span,
                        format!("expected `type` or `param`, found {}", t.kind),
                    );
                    self.recover();
                }
            }
        }
        Module { items }
    }

    fn type_block(&mut self) -> Option<TypeBlock> {
        self.expect(&TokenKind::KwType, "`type`")?;
        let (name, name_span) = self.ident("a type name")?;
        let mut block = TypeBlock {
            name,
            name_span,
            params: Vec::new(),
            ops: Vec::new(),
            vars: Vec::new(),
            axioms: Vec::new(),
        };
        loop {
            match self.peek_kind() {
                TokenKind::KwParam => {
                    self.advance();
                    loop {
                        match self.ident("a parameter sort name") {
                            Some(n) => block.params.push(n),
                            None => {
                                self.recover();
                                break;
                            }
                        }
                        if matches!(self.peek_kind(), TokenKind::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                TokenKind::KwOps => {
                    self.advance();
                    self.ops_section(&mut block);
                }
                TokenKind::KwVars => {
                    self.advance();
                    self.vars_section(&mut block);
                }
                TokenKind::KwAxioms => {
                    self.advance();
                    self.axioms_section(&mut block);
                }
                TokenKind::KwEnd => {
                    self.advance();
                    return Some(block);
                }
                TokenKind::Eof | TokenKind::KwType => {
                    let t = self.peek().clone();
                    self.diags.error(
                        t.span,
                        format!(
                            "type block `{}` is not closed: expected `end`, found {}",
                            block.name, t.kind
                        ),
                    );
                    return Some(block);
                }
                _ => {
                    let t = self.peek().clone();
                    self.diags.error(
                        t.span,
                        format!(
                            "expected a section (`ops`, `vars`, `axioms`) or `end`, found {}",
                            t.kind
                        ),
                    );
                    self.recover();
                }
            }
        }
    }

    fn ops_section(&mut self, block: &mut TypeBlock) {
        while let TokenKind::Ident(_) = self.peek_kind() {
            match self.op_decl() {
                Some(decl) => block.ops.push(decl),
                None => self.recover(),
            }
        }
    }

    fn op_decl(&mut self) -> Option<OpDecl> {
        let (name, span) = self.ident("an operation name")?;
        self.expect(&TokenKind::Colon, "`:` after the operation name")?;
        let mut args = Vec::new();
        if !matches!(self.peek_kind(), TokenKind::Arrow) {
            loop {
                args.push(self.ident("an argument sort")?);
                if matches!(self.peek_kind(), TokenKind::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Arrow, "`->`")?;
        let result = self.ident("a result sort")?;
        let ctor = if matches!(self.peek_kind(), TokenKind::KwCtor) {
            self.advance();
            true
        } else {
            false
        };
        Some(OpDecl {
            name,
            args,
            result,
            ctor,
            span,
        })
    }

    fn vars_section(&mut self, block: &mut TypeBlock) {
        while let TokenKind::Ident(_) = self.peek_kind() {
            match self.var_decl() {
                Some(decl) => block.vars.push(decl),
                None => self.recover(),
            }
        }
    }

    fn var_decl(&mut self) -> Option<VarDecl> {
        let mut names = vec![self.ident("a variable name")?];
        while matches!(self.peek_kind(), TokenKind::Comma) {
            self.advance();
            names.push(self.ident("a variable name")?);
        }
        self.expect(&TokenKind::Colon, "`:` after variable name(s)")?;
        let sort = self.ident("a sort name")?;
        Some(VarDecl { names, sort })
    }

    fn axioms_section(&mut self, block: &mut TypeBlock) {
        while matches!(self.peek_kind(), TokenKind::LBracket) {
            match self.axiom() {
                Some(ax) => block.axioms.push(ax),
                None => self.recover(),
            }
        }
    }

    fn axiom(&mut self) -> Option<AxiomDecl> {
        self.expect(&TokenKind::LBracket, "`[`")?;
        let (label, label_span) = self.ident("an axiom label")?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        let lhs = self.term()?;
        self.expect(&TokenKind::Equals, "`=` between the axiom's sides")?;
        let rhs = self.term()?;
        Some(AxiomDecl {
            label,
            label_span,
            lhs,
            rhs,
        })
    }

    fn term(&mut self) -> Option<TermAst> {
        self.term_depth += 1;
        if self.term_depth > MAX_TERM_DEPTH {
            let span = self.peek().span;
            self.diags.error(
                span,
                format!("term nesting exceeds {MAX_TERM_DEPTH} levels"),
            );
            self.term_depth -= 1;
            return None;
        }
        let result = self.term_inner();
        self.term_depth -= 1;
        result
    }

    fn term_inner(&mut self) -> Option<TermAst> {
        match self.peek_kind().clone() {
            TokenKind::KwIf => {
                let span = self.advance().span;
                let cond = Box::new(self.term()?);
                self.expect(&TokenKind::KwThen, "`then`")?;
                let then_branch = Box::new(self.term()?);
                self.expect(&TokenKind::KwElse, "`else`")?;
                let else_branch = Box::new(self.term()?);
                Some(TermAst::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::KwError => {
                let span = self.advance().span;
                Some(TermAst::Error(span))
            }
            TokenKind::Ident(_) => {
                let (name, name_span) = self.ident("a term")?;
                if matches!(self.peek_kind(), TokenKind::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if !matches!(self.peek_kind(), TokenKind::RParen) {
                        loop {
                            args.push(self.term()?);
                            if matches!(self.peek_kind(), TokenKind::Comma) {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    Some(TermAst::App {
                        name,
                        name_span,
                        args,
                    })
                } else {
                    Some(TermAst::Name(name, name_span))
                }
            }
            other => {
                let span = self.peek().span;
                self.diags
                    .error(span, format!("expected a term, found {other}"));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUEUE_SRC: &str = r#"
-- The Queue of section 3.
type Queue
param Item

ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  REMOVE: Queue -> Queue
  IS_EMPTY?: Queue -> Bool

vars
  q: Queue
  i, i1: Item

axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#;

    #[test]
    fn parses_the_full_queue_module() {
        let module = parse_module(QUEUE_SRC).unwrap();
        assert_eq!(module.items.len(), 1);
        let Item::Type(block) = &module.items[0] else {
            panic!("first item should be the type block");
        };
        assert_eq!(block.name, "Queue");
        assert_eq!(block.params.len(), 1);
        assert_eq!(block.params[0].0, "Item");
        assert_eq!(block.ops.len(), 5);
        assert_eq!(block.vars.len(), 2);
        assert_eq!(block.axioms.len(), 6);
        assert!(block.ops[0].ctor);
        assert!(!block.ops[2].ctor);
        assert_eq!(block.ops[1].args.len(), 2);
        assert_eq!(block.vars[1].names.len(), 2);
        assert_eq!(block.axioms[3].label, "4");
        assert!(matches!(block.axioms[3].rhs, TermAst::If { .. }));
        assert!(matches!(block.axioms[2].rhs, TermAst::Error(_)));
    }

    #[test]
    fn param_inside_module_is_an_item() {
        let module = parse_module("param Item, Identifier").unwrap();
        let Item::Param { names } = &module.items[0] else {
            panic!();
        };
        assert_eq!(names.len(), 2);
        assert_eq!(names[1].0, "Identifier");
    }

    #[test]
    fn several_type_blocks_parse() {
        let src = r#"
type Stack
ops
  NEWSTACK: -> Stack ctor
end
type Array
ops
  EMPTY: -> Array ctor
end
"#;
        let module = parse_module(src).unwrap();
        assert_eq!(module.items.len(), 2);
    }

    #[test]
    fn missing_end_is_reported_but_block_is_kept() {
        let src = "type Stack\nops\n  NEWSTACK: -> Stack ctor\ntype Array\nops\n EMPTY: -> Array ctor\nend";
        let err = parse_module(src).unwrap_err();
        assert!(err.to_string().contains("not closed"), "{err}");
    }

    #[test]
    fn malformed_op_recovers_and_reports_later_errors_too() {
        let src = r#"
type T
ops
  GOOD: -> T ctor
  BAD T -> T
  ALSO_GOOD: T -> T
axioms
  [a] ALSO_GOOD(oops = T
end
"#;
        let err = parse_module(src).unwrap_err();
        // Both the op error and the axiom error are present.
        assert!(err.len() >= 2, "{err}");
        assert!(err.to_string().contains("expected `:`"), "{err}");
    }

    #[test]
    fn nested_terms_parse() {
        let src = r#"
type T
ops
  F: T -> T
  C: -> T ctor
vars
  x: T
axioms
  [a] F(F(F(C))) = if F(x) then C else F(C)
end
"#;
        // Note: this is ill-sorted (F(x) is not Bool) but the *parser*
        // accepts it; sorts are the lowering pass's business.
        let module = parse_module(src).unwrap();
        let Item::Type(block) = &module.items[0] else {
            panic!();
        };
        let TermAst::App { name, args, .. } = &block.axioms[0].lhs else {
            panic!();
        };
        assert_eq!(name, "F");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn empty_argument_list_parses_as_constant_application() {
        let src =
            "type T\nops\n C: -> T ctor\n F: T -> T\nvars\n x: T\naxioms\n [a] F(C()) = C\nend";
        let module = parse_module(src).unwrap();
        let Item::Type(block) = &module.items[0] else {
            panic!();
        };
        let TermAst::App { args, .. } = &block.axioms[0].lhs else {
            panic!();
        };
        assert!(matches!(&args[0], TermAst::App { args, .. } if args.is_empty()));
    }

    #[test]
    fn stray_top_level_token_is_reported() {
        let err = parse_module("banana type T end").unwrap_err();
        assert!(err.to_string().contains("expected `type` or `param`"));
    }
}
