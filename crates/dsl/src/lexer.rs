//! The lexer: source text to tokens.

use crate::diag::{Diagnostics, Span};
use crate::token::{Token, TokenKind};

/// Tokenizes a source file. Comments run from `--` to end of line.
///
/// # Errors
///
/// Returns a diagnostic for every unrecognized character (all such
/// characters are reported at once, not just the first).
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostics> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut diags = Diagnostics::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push(Token::new(TokenKind::Arrow, Span::new(i, i + 2)));
                i += 2;
            }
            b'(' => {
                tokens.push(Token::new(TokenKind::LParen, Span::new(i, i + 1)));
                i += 1;
            }
            b')' => {
                tokens.push(Token::new(TokenKind::RParen, Span::new(i, i + 1)));
                i += 1;
            }
            b'[' => {
                tokens.push(Token::new(TokenKind::LBracket, Span::new(i, i + 1)));
                i += 1;
            }
            b']' => {
                tokens.push(Token::new(TokenKind::RBracket, Span::new(i, i + 1)));
                i += 1;
            }
            b',' => {
                tokens.push(Token::new(TokenKind::Comma, Span::new(i, i + 1)));
                i += 1;
            }
            b':' => {
                tokens.push(Token::new(TokenKind::Colon, Span::new(i, i + 1)));
                i += 1;
            }
            b'=' => {
                tokens.push(Token::new(TokenKind::Equals, Span::new(i, i + 1)));
                i += 1;
            }
            _ if b.is_ascii_alphabetic() || b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i];
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b'\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                // A single trailing `?` is part of the name (IS_EMPTY?).
                if i < bytes.len() && bytes[i] == b'?' {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = match text {
                    "type" => TokenKind::KwType,
                    "param" => TokenKind::KwParam,
                    "ops" => TokenKind::KwOps,
                    "vars" => TokenKind::KwVars,
                    "axioms" => TokenKind::KwAxioms,
                    "end" => TokenKind::KwEnd,
                    "if" => TokenKind::KwIf,
                    "then" => TokenKind::KwThen,
                    "else" => TokenKind::KwElse,
                    "error" => TokenKind::KwError,
                    "ctor" => TokenKind::KwCtor,
                    _ => TokenKind::Ident(text.to_owned()),
                };
                tokens.push(Token::new(kind, Span::new(start, i)));
            }
            _ => {
                // Report the full UTF-8 character, not just the byte.
                let ch = source[i..].chars().next().unwrap_or('\u{FFFD}');
                let len = ch.len_utf8();
                diags.error(
                    Span::new(i, i + len),
                    format!("unrecognized character `{ch}`"),
                );
                i += len;
            }
        }
    }
    tokens.push(Token::new(
        TokenKind::Eof,
        Span::new(bytes.len(), bytes.len()),
    ));
    if diags.is_empty() {
        Ok(tokens)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration_line() {
        let ks = kinds("ADD: Queue, Item -> Queue ctor");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("ADD".into()),
                TokenKind::Colon,
                TokenKind::Ident("Queue".into()),
                TokenKind::Comma,
                TokenKind::Ident("Item".into()),
                TokenKind::Arrow,
                TokenKind::Ident("Queue".into()),
                TokenKind::KwCtor,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_paper_flavoured_names() {
        let ks = kinds("IS_EMPTY? IS.NEWSTACK? ENTERBLOCK' hash_tab q1");
        let names: Vec<String> = ks
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            names,
            vec!["IS_EMPTY?", "IS.NEWSTACK?", "ENTERBLOCK'", "hash_tab", "q1"]
        );
    }

    #[test]
    fn keywords_are_distinguished() {
        let ks = kinds("type ops vars axioms end if then else error ctor param");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwType,
                TokenKind::KwOps,
                TokenKind::KwVars,
                TokenKind::KwAxioms,
                TokenKind::KwEnd,
                TokenKind::KwIf,
                TokenKind::KwThen,
                TokenKind::KwElse,
                TokenKind::KwError,
                TokenKind::KwCtor,
                TokenKind::KwParam,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("NEW -- a fresh queue\n-> Queue");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("NEW".into()),
                TokenKind::Arrow,
                TokenKind::Ident("Queue".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numeric_labels_lex_as_identifiers() {
        let ks = kinds("[17]");
        assert_eq!(
            ks,
            vec![
                TokenKind::LBracket,
                TokenKind::Ident("17".into()),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn bad_characters_are_all_reported() {
        let err = lex("NEW # $ -> Queue").unwrap_err();
        assert_eq!(err.len(), 2);
        assert!(err.items()[0].message.contains("`#`"));
        assert!(err.items()[1].message.contains("`$`"));
    }

    #[test]
    fn spans_are_exact() {
        let tokens = lex("ADD: Q").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 3));
        assert_eq!(tokens[1].span, Span::new(3, 4));
        assert_eq!(tokens[2].span, Span::new(5, 6));
    }

    #[test]
    fn question_mark_only_at_end_of_name() {
        // `?` not following a name is unrecognized.
        let err = lex("? ADD").unwrap_err();
        assert_eq!(err.len(), 1);
    }
}
