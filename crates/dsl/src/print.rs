//! Pretty-printing: a [`Spec`] back to specification-language source.
//!
//! The printer and the parser are designed as a round-trip pair:
//! `parse(print_spec(&spec))` always succeeds and yields a specification
//! [`semantically_equal`] to the input. (Exact id-level equality is not
//! guaranteed — printing groups operations by type block, which may
//! reorder declarations.)

use std::collections::HashSet;

use adt_core::{display, SortId, Spec};

/// Renders a specification as parseable source text.
///
/// One `type` block is emitted per sort of interest; each operation is
/// placed in the block of its result sort when that is a sort of interest,
/// otherwise in the block of its first sort-of-interest argument, and
/// otherwise in the first block. Parameter sorts are declared in the first
/// block. Axioms follow the block of their head operation.
pub fn print_spec(spec: &Spec) -> String {
    let sig = spec.sig();
    let tois = spec.tois();
    assert!(
        !tois.is_empty(),
        "cannot print a specification with no sorts of interest"
    );

    let block_of_op = |op: adt_core::OpId| -> SortId {
        let info = sig.op(op);
        if spec.is_toi(info.result()) {
            return info.result();
        }
        info.args()
            .iter()
            .copied()
            .find(|&s| spec.is_toi(s))
            .unwrap_or(tois[0])
    };

    let mut out = String::new();
    let mut printed_params = false;
    for (block_idx, &toi) in tois.iter().enumerate() {
        if block_idx > 0 {
            out.push('\n');
        }
        out.push_str(&format!("type {}\n", sig.sort(toi).name()));
        if !printed_params && !spec.params().is_empty() {
            let names: Vec<&str> = spec.params().iter().map(|&p| sig.sort(p).name()).collect();
            out.push_str(&format!("param {}\n", names.join(", ")));
            printed_params = true;
        }

        // Operations of this block.
        let ops: Vec<_> = sig
            .op_ids()
            .filter(|&op| !sig.op(op).is_builtin() && block_of_op(op) == toi)
            .collect();
        if !ops.is_empty() {
            out.push_str("\nops\n");
            for op in &ops {
                let info = sig.op(*op);
                let args: Vec<&str> = info.args().iter().map(|&s| sig.sort(s).name()).collect();
                out.push_str(&format!(
                    "  {}: {}{}-> {}{}\n",
                    info.name(),
                    args.join(", "),
                    if args.is_empty() { "" } else { " " },
                    sig.sort(info.result()).name(),
                    if info.is_constructor() { " ctor" } else { "" },
                ));
            }
        }

        // Variables whose sort is this block's sort, plus (in the first
        // block) all variables of parameter and builtin sorts.
        let vars: Vec<_> = sig
            .var_ids()
            .filter(|&v| {
                let s = sig.var(v).sort();
                s == toi || (block_idx == 0 && !spec.is_toi(s))
            })
            .collect();
        if !vars.is_empty() {
            out.push_str("\nvars\n");
            for v in &vars {
                out.push_str(&format!(
                    "  {}: {}\n",
                    sig.var(*v).name(),
                    sig.sort(sig.var(*v).sort()).name()
                ));
            }
        }

        // Axioms headed by an operation of this block.
        let op_set: HashSet<_> = ops.iter().copied().collect();
        let axioms: Vec<_> = spec
            .axioms()
            .iter()
            .filter(|ax| ax.head_op().map(|op| op_set.contains(&op)).unwrap_or(false))
            .collect();
        if !axioms.is_empty() {
            out.push_str("\naxioms\n");
            for ax in axioms {
                out.push_str(&format!(
                    "  [{}] {} = {}\n",
                    ax.label(),
                    display::term(sig, ax.lhs()),
                    display::term(sig, ax.rhs())
                ));
            }
        }
        out.push_str("end\n");
    }
    out
}

/// Whether two specifications are the same up to declaration order: same
/// sorts (with roles), operations (with signatures and constructor flags),
/// variables, and axioms (compared by rendered text, which is
/// α-faithful because variable names are preserved).
pub fn semantically_equal(a: &Spec, b: &Spec) -> bool {
    let sort_set = |s: &Spec| -> HashSet<(String, bool, bool)> {
        s.sig()
            .sort_ids()
            .map(|id| {
                (
                    s.sig().sort(id).name().to_owned(),
                    s.is_toi(id),
                    s.is_param(id),
                )
            })
            .collect()
    };
    let op_set = |s: &Spec| -> HashSet<(String, Vec<String>, String, bool)> {
        s.sig()
            .op_ids()
            .map(|id| {
                let info = s.sig().op(id);
                (
                    info.name().to_owned(),
                    info.args()
                        .iter()
                        .map(|&a| s.sig().sort(a).name().to_owned())
                        .collect(),
                    s.sig().sort(info.result()).name().to_owned(),
                    info.is_constructor(),
                )
            })
            .collect()
    };
    let var_set = |s: &Spec| -> HashSet<(String, String)> {
        s.sig()
            .var_ids()
            .map(|id| {
                (
                    s.sig().var(id).name().to_owned(),
                    s.sig().sort(s.sig().var(id).sort()).name().to_owned(),
                )
            })
            .collect()
    };
    let axiom_set = |s: &Spec| -> HashSet<String> {
        s.axioms()
            .iter()
            .map(|ax| {
                format!(
                    "[{}] {} = {}",
                    ax.label(),
                    display::term(s.sig(), ax.lhs()),
                    display::term(s.sig(), ax.rhs())
                )
            })
            .collect()
    };
    sort_set(a) == sort_set(b)
        && op_set(a) == op_set(b)
        && var_set(a) == var_set(b)
        && axiom_set(a) == axiom_set(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const QUEUE_SRC: &str = r#"
type Queue
param Item
ops
  NEW: -> Queue ctor
  ADD: Queue, Item -> Queue ctor
  FRONT: Queue -> Item
  REMOVE: Queue -> Queue
  IS_EMPTY?: Queue -> Bool
vars
  q: Queue
  i: Item
axioms
  [1] IS_EMPTY?(NEW) = true
  [2] IS_EMPTY?(ADD(q, i)) = false
  [3] FRONT(NEW) = error
  [4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  [5] REMOVE(NEW) = error
  [6] REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
"#;

    #[test]
    fn queue_round_trips() {
        let spec = parse(QUEUE_SRC).unwrap();
        let printed = print_spec(&spec);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{printed}\n{}", e.render(&printed)));
        assert!(semantically_equal(&spec, &reparsed), "printed:\n{printed}");
    }

    #[test]
    fn printed_source_contains_paper_syntax() {
        let spec = parse(QUEUE_SRC).unwrap();
        let printed = print_spec(&spec);
        assert!(printed.contains("type Queue"));
        assert!(printed.contains("param Item"));
        assert!(printed.contains("NEW: -> Queue ctor"));
        assert!(printed.contains("ADD: Queue, Item -> Queue ctor"));
        assert!(printed.contains("[4] FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)"));
        assert!(printed.contains("[3] FRONT(NEW) = error"));
    }

    #[test]
    fn multi_type_module_round_trips() {
        let src = r#"
type Stack
param Elem
ops
  NEWSTACK: -> Stack ctor
  PUSH: Stack, Elem -> Stack ctor
  POP: Stack -> Stack
  TOP: Stack -> Elem
vars
  s: Stack
  e: Elem
axioms
  [p1] POP(NEWSTACK) = error
  [p2] POP(PUSH(s, e)) = s
  [t1] TOP(NEWSTACK) = error
  [t2] TOP(PUSH(s, e)) = e
end

type Pair
ops
  MKPAIR: Stack, Stack -> Pair ctor
  FIRST: Pair -> Stack
vars
  s1, s2: Stack
axioms
  [f1] FIRST(MKPAIR(s1, s2)) = s1
end
"#;
        let spec = parse(src).unwrap();
        let printed = print_spec(&spec);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{printed}\n{}", e.render(&printed)));
        assert!(semantically_equal(&spec, &reparsed), "printed:\n{printed}");
        // Two blocks in the output.
        assert_eq!(printed.matches("type ").count(), 2);
    }

    #[test]
    fn semantic_equality_detects_differences() {
        let a = parse(QUEUE_SRC).unwrap();
        // Same but with axiom 4 dropped.
        let without_q4: String = QUEUE_SRC
            .lines()
            .filter(|l| !l.contains("[4]"))
            .collect::<Vec<_>>()
            .join("\n");
        let b = parse(&without_q4).unwrap();
        assert!(!semantically_equal(&a, &b));
        // And with a ctor flag flipped.
        let flipped = QUEUE_SRC.replace("REMOVE: Queue -> Queue", "REMOVE: Queue -> Queue ctor");
        let c = parse(&flipped).unwrap();
        assert!(!semantically_equal(&a, &c));
    }
}
