//! One-way pattern matching (the engine behind axiom application).
//!
//! `match_pattern(pattern, subject)` finds a substitution `σ` with
//! `σ(pattern) = subject`, if one exists. Only pattern variables are
//! instantiated; the subject is treated as rigid (its variables match only
//! themselves). This is the operation a rewrite engine performs at every
//! candidate position.

use crate::subst::Subst;
use crate::term::Term;

/// Attempts to match `pattern` against `subject` at the root.
///
/// Returns the unique matching substitution, or `None` if the terms are
/// incompatible. Nonlinear patterns (repeated variables) require equal
/// subjects at every occurrence, as in `IS_SAME?(id, id)`.
///
/// ```
/// use adt_core::{match_pattern, Signature, Term};
///
/// let mut sig = Signature::new();
/// let q = sig.add_sort("Queue").unwrap();
/// let i = sig.add_sort("Item").unwrap();
/// let new = sig.add_ctor("NEW", vec![], q).unwrap();
/// let add = sig.add_ctor("ADD", vec![q, i], q).unwrap();
/// let a = sig.add_ctor("A", vec![], i).unwrap();
/// let qv = sig.add_var("q", q).unwrap();
/// let iv = sig.add_var("i", i).unwrap();
///
/// // pattern ADD(q, i) vs subject ADD(NEW, A)
/// let pattern = Term::App(add, vec![Term::Var(qv), Term::Var(iv)]);
/// let subject = Term::App(add, vec![Term::constant(new), Term::constant(a)]);
/// let s = match_pattern(&pattern, &subject).expect("matches");
/// assert_eq!(s.get(qv), Some(&Term::constant(new)));
/// assert_eq!(s.get(iv), Some(&Term::constant(a)));
/// ```
pub fn match_pattern(pattern: &Term, subject: &Term) -> Option<Subst> {
    let mut subst = Subst::new();
    if match_into(pattern, subject, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

/// Like [`match_pattern`], but extends an existing partial substitution,
/// failing if a pattern variable would need two different bindings.
///
/// Useful when matching several pattern/subject pairs under a shared
/// substitution (e.g. the argument lists of two applications).
pub fn match_pattern_at_root(pattern: &Term, subject: &Term, subst: &mut Subst) -> bool {
    match_into(pattern, subject, subst)
}

fn match_into(pattern: &Term, subject: &Term, subst: &mut Subst) -> bool {
    match (pattern, subject) {
        (Term::Var(v), _) => {
            if let Some(bound) = subst.get(*v) {
                bound == subject
            } else {
                subst.bind(*v, subject.clone());
                true
            }
        }
        (Term::Error(s1), Term::Error(s2)) => s1 == s2,
        (Term::App(op1, args1), Term::App(op2, args2)) => {
            op1 == op2
                && args1.len() == args2.len()
                && args1
                    .iter()
                    .zip(args2)
                    .all(|(p, s)| match_into(p, s, subst))
        }
        (Term::Ite(p), Term::Ite(s)) => {
            match_into(&p.cond, &s.cond, subst)
                && match_into(&p.then_branch, &s.then_branch, subst)
                && match_into(&p.else_branch, &s.else_branch, subst)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::signature::Signature;

    struct Fixture {
        sig: Signature,
        q: VarId,
        i: VarId,
        i1: VarId,
    }

    fn fixture() -> Fixture {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_ctor("A", vec![], item).unwrap();
        sig.add_ctor("B", vec![], item).unwrap();
        sig.add_op("FRONT", vec![queue], item).unwrap();
        let q = sig.add_var("q", queue).unwrap();
        let i = sig.add_var("i", item).unwrap();
        let i1 = sig.add_var("i1", item).unwrap();
        Fixture { sig, q, i, i1 }
    }

    #[test]
    fn matching_binds_variables() {
        let f = fixture();
        let new = f.sig.apply("NEW", vec![]).unwrap();
        let a = f.sig.apply("A", vec![]).unwrap();
        let pattern = f
            .sig
            .apply("ADD", vec![Term::Var(f.q), Term::Var(f.i)])
            .unwrap();
        let subject = f.sig.apply("ADD", vec![new.clone(), a.clone()]).unwrap();
        let s = match_pattern(&pattern, &subject).unwrap();
        assert_eq!(s.get(f.q), Some(&new));
        assert_eq!(s.get(f.i), Some(&a));
        assert_eq!(s.apply(&pattern), subject);
    }

    #[test]
    fn head_mismatch_fails() {
        let f = fixture();
        let new = f.sig.apply("NEW", vec![]).unwrap();
        let front = f.sig.apply("FRONT", vec![new.clone()]).unwrap();
        let pattern = f.sig.apply("NEW", vec![]).unwrap();
        assert!(match_pattern(&pattern, &front).is_none());
    }

    #[test]
    fn nonlinear_pattern_requires_equal_subjects() {
        let f = fixture();
        let a = f.sig.apply("A", vec![]).unwrap();
        let b = f.sig.apply("B", vec![]).unwrap();
        let new = f.sig.apply("NEW", vec![]).unwrap();
        // pattern ADD(ADD(q, i), i) — i occurs twice.
        let inner = f
            .sig
            .apply("ADD", vec![Term::Var(f.q), Term::Var(f.i)])
            .unwrap();
        let pattern = f.sig.apply("ADD", vec![inner, Term::Var(f.i)]).unwrap();

        let good_subject = f
            .sig
            .apply(
                "ADD",
                vec![
                    f.sig.apply("ADD", vec![new.clone(), a.clone()]).unwrap(),
                    a.clone(),
                ],
            )
            .unwrap();
        assert!(match_pattern(&pattern, &good_subject).is_some());

        let bad_subject = f
            .sig
            .apply("ADD", vec![f.sig.apply("ADD", vec![new, a]).unwrap(), b])
            .unwrap();
        assert!(match_pattern(&pattern, &bad_subject).is_none());
    }

    #[test]
    fn subject_variables_are_rigid() {
        let f = fixture();
        // pattern q (a bare variable) matches anything, including a variable.
        let s = match_pattern(&Term::Var(f.q), &Term::Var(f.q)).unwrap();
        assert_eq!(s.get(f.q), Some(&Term::Var(f.q)));
        // pattern NEW does not match the distinct subject variable i.
        let new = f.sig.apply("NEW", vec![]).unwrap();
        assert!(match_pattern(&new, &Term::Var(f.i)).is_none());
        // pattern i (Item var) "matches" subject i1 by binding i ↦ i1 — one-way.
        let s = match_pattern(&Term::Var(f.i), &Term::Var(f.i1)).unwrap();
        assert_eq!(s.get(f.i), Some(&Term::Var(f.i1)));
    }

    #[test]
    fn error_matches_only_same_sorted_error() {
        let f = fixture();
        let item = f.sig.find_sort("Item").unwrap();
        let queue = f.sig.find_sort("Queue").unwrap();
        assert!(match_pattern(&Term::Error(item), &Term::Error(item)).is_some());
        assert!(match_pattern(&Term::Error(item), &Term::Error(queue)).is_none());
        let a = f.sig.apply("A", vec![]).unwrap();
        assert!(match_pattern(&Term::Error(item), &a).is_none());
        // but a variable pattern matches an error subject
        assert!(match_pattern(&Term::Var(f.i), &Term::Error(item)).is_some());
    }

    #[test]
    fn ite_patterns_match_structurally() {
        let f = fixture();
        let a = f.sig.apply("A", vec![]).unwrap();
        let b = f.sig.apply("B", vec![]).unwrap();
        let pattern = Term::ite(f.sig.tt(), Term::Var(f.i), Term::Var(f.i1));
        let subject = Term::ite(f.sig.tt(), a.clone(), b.clone());
        let s = match_pattern(&pattern, &subject).unwrap();
        assert_eq!(s.get(f.i), Some(&a));
        assert_eq!(s.get(f.i1), Some(&b));
        let wrong = Term::ite(f.sig.ff(), a, b);
        assert!(match_pattern(&pattern, &wrong).is_none());
    }

    #[test]
    fn shared_substitution_across_pairs() {
        let f = fixture();
        let a = f.sig.apply("A", vec![]).unwrap();
        let b = f.sig.apply("B", vec![]).unwrap();
        let mut s = Subst::new();
        assert!(match_pattern_at_root(&Term::Var(f.i), &a, &mut s));
        // Same variable against a different subject must now fail.
        assert!(!match_pattern_at_root(&Term::Var(f.i), &b, &mut s));
        // But against the same subject succeeds.
        assert!(match_pattern_at_root(&Term::Var(f.i), &a, &mut s));
    }
}
