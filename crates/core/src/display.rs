//! Human-readable rendering of terms and axioms.
//!
//! Terms print in the paper's concrete syntax, which is also the syntax of
//! the `adt-dsl` specification language: `FRONT(ADD(q, i))`,
//! `if IS_EMPTY?(q) then i else FRONT(q)`, `error`.

use std::fmt;

use crate::axiom::Axiom;
use crate::signature::Signature;
use crate::term::Term;

/// A [`fmt::Display`] adapter pairing a term with its signature.
///
/// Obtain one via [`term`]:
///
/// ```
/// use adt_core::{display, Signature};
///
/// let mut sig = Signature::new();
/// let q = sig.add_sort("Queue").unwrap();
/// let new = sig.add_ctor("NEW", vec![], q).unwrap();
/// let t = sig.apply("NEW", vec![]).unwrap();
/// assert_eq!(display::term(&sig, &t).to_string(), "NEW");
/// # let _ = (q, new);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TermDisplay<'a> {
    sig: &'a Signature,
    term: &'a Term,
}

/// A [`fmt::Display`] adapter for an axiom (`label: lhs = rhs`).
#[derive(Debug, Clone, Copy)]
pub struct AxiomDisplay<'a> {
    sig: &'a Signature,
    axiom: &'a Axiom,
}

/// Renders `t` against `sig`.
pub fn term<'a>(sig: &'a Signature, t: &'a Term) -> TermDisplay<'a> {
    TermDisplay { sig, term: t }
}

/// Renders `a` against `sig`.
pub fn axiom<'a>(sig: &'a Signature, a: &'a Axiom) -> AxiomDisplay<'a> {
    AxiomDisplay { sig, axiom: a }
}

fn fmt_term(sig: &Signature, t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        Term::Var(v) => f.write_str(sig.var(*v).name()),
        Term::Error(_) => f.write_str("error"),
        Term::App(op, args) => {
            f.write_str(sig.op(*op).name())?;
            if !args.is_empty() {
                f.write_str("(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    fmt_term(sig, a, f)?;
                }
                f.write_str(")")?;
            }
            Ok(())
        }
        Term::Ite(ite) => {
            f.write_str("if ")?;
            fmt_term(sig, &ite.cond, f)?;
            f.write_str(" then ")?;
            fmt_term(sig, &ite.then_branch, f)?;
            f.write_str(" else ")?;
            fmt_term(sig, &ite.else_branch, f)
        }
    }
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_term(self.sig, self.term, f)
    }
}

impl fmt::Display for AxiomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} = {}",
            self.axiom.label(),
            term(self.sig, self.axiom.lhs()),
            term(self.sig, self.axiom.rhs())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_op("FRONT", vec![queue], item).unwrap();
        sig.add_op("IS_EMPTY?", vec![queue], sig.bool_sort())
            .unwrap();
        sig.add_var("q", queue).unwrap();
        sig.add_var("i", item).unwrap();
        sig
    }

    #[test]
    fn constants_print_bare() {
        let sig = sig();
        let new = sig.apply("NEW", vec![]).unwrap();
        assert_eq!(term(&sig, &new).to_string(), "NEW");
        assert_eq!(term(&sig, &sig.tt()).to_string(), "true");
    }

    #[test]
    fn nested_applications_print_with_commas() {
        let sig = sig();
        let q = Term::Var(sig.find_var("q").unwrap());
        let i = Term::Var(sig.find_var("i").unwrap());
        let t = sig
            .apply("FRONT", vec![sig.apply("ADD", vec![q, i]).unwrap()])
            .unwrap();
        assert_eq!(term(&sig, &t).to_string(), "FRONT(ADD(q, i))");
    }

    #[test]
    fn ite_and_error_print_in_paper_syntax() {
        let sig = sig();
        let q = Term::Var(sig.find_var("q").unwrap());
        let i = Term::Var(sig.find_var("i").unwrap());
        let item = sig.find_sort("Item").unwrap();
        let t = Term::ite(
            sig.apply("IS_EMPTY?", vec![q]).unwrap(),
            i,
            Term::Error(item),
        );
        assert_eq!(
            term(&sig, &t).to_string(),
            "if IS_EMPTY?(q) then i else error"
        );
    }

    #[test]
    fn axioms_print_with_label() {
        let sig = sig();
        let item = sig.find_sort("Item").unwrap();
        let lhs = sig
            .apply("FRONT", vec![sig.apply("NEW", vec![]).unwrap()])
            .unwrap();
        let ax = Axiom::new("q3", lhs, Term::Error(item));
        assert_eq!(axiom(&sig, &ax).to_string(), "[q3] FRONT(NEW) = error");
    }
}
