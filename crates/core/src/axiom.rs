//! Axioms: the equational relations that give operations their meaning.

use crate::error::CoreError;
use crate::signature::Signature;
use crate::term::Term;
use crate::Result;

/// One axiom (relation) of a specification: a labelled equation
/// `lhs = rhs` between two terms of a common sort.
///
/// Read left-to-right, an axiom is a rewrite rule; the well-formedness
/// conditions checked by [`Axiom::validate`] are exactly those required for
/// that operational reading:
///
/// * both sides are well-sorted and of the same sort,
/// * the left-hand side is not a bare variable nor an `error` (it must have
///   something to match on),
/// * every variable of the right-hand side also occurs on the left (no
///   invented values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axiom {
    label: String,
    lhs: Term,
    rhs: Term,
}

impl Axiom {
    /// Creates an axiom without validating it; see [`Axiom::validate`].
    pub fn new(label: impl Into<String>, lhs: Term, rhs: Term) -> Self {
        Axiom {
            label: label.into(),
            lhs,
            rhs,
        }
    }

    /// The axiom's label (e.g. `"q4"` or `"(9)"`), used in diagnostics and
    /// rewrite traces.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The left-hand side.
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }

    /// The right-hand side.
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }

    /// Checks the axiom's well-formedness against a signature.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IllFormedAxiom`] (or a sort error from the term
    /// checker) describing the first problem found.
    pub fn validate(&self, sig: &Signature) -> Result<()> {
        let lhs_sort = self.lhs.sort(sig)?;
        let rhs_sort = self.rhs.sort(sig)?;
        if lhs_sort != rhs_sort {
            return Err(CoreError::SortMismatch {
                context: format!("both sides of axiom {}", self.label),
                expected: sig.sort(lhs_sort).name().into(),
                found: sig.sort(rhs_sort).name().into(),
            });
        }
        match &self.lhs {
            Term::Var(_) => {
                return Err(CoreError::IllFormedAxiom {
                    label: self.label.clone(),
                    reason: "left-hand side is a bare variable".into(),
                })
            }
            Term::Error(_) => {
                return Err(CoreError::IllFormedAxiom {
                    label: self.label.clone(),
                    reason: "left-hand side is the error value".into(),
                })
            }
            Term::Ite(_) => {
                return Err(CoreError::IllFormedAxiom {
                    label: self.label.clone(),
                    reason: "left-hand side is an if-then-else (conditionals belong on the right)"
                        .into(),
                })
            }
            Term::App(_, _) => {}
        }
        let lhs_vars = self.lhs.vars();
        for v in self.rhs.vars() {
            if !lhs_vars.contains(&v) {
                return Err(CoreError::IllFormedAxiom {
                    label: self.label.clone(),
                    reason: format!(
                        "right-hand side variable `{}` does not occur on the left",
                        sig.var(v).name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// The operation at the head of the left-hand side.
    ///
    /// Valid axioms always have an application on the left, so this returns
    /// `None` only for axioms that would fail [`Axiom::validate`].
    pub fn head_op(&self) -> Option<crate::ids::OpId> {
        match &self.lhs {
            Term::App(op, _) => Some(*op),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_op("FRONT", vec![queue], item).unwrap();
        sig.add_op("IS_EMPTY?", vec![queue], sig.bool_sort())
            .unwrap();
        sig.add_var("q", queue).unwrap();
        sig.add_var("i", item).unwrap();
        sig
    }

    #[test]
    fn valid_paper_axiom_passes() {
        let sig = sig();
        let q = Term::Var(sig.find_var("q").unwrap());
        let i = Term::Var(sig.find_var("i").unwrap());
        // FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
        let lhs = sig
            .apply(
                "FRONT",
                vec![sig.apply("ADD", vec![q.clone(), i.clone()]).unwrap()],
            )
            .unwrap();
        let rhs = Term::ite(
            sig.apply("IS_EMPTY?", vec![q.clone()]).unwrap(),
            i,
            sig.apply("FRONT", vec![q]).unwrap(),
        );
        let ax = Axiom::new("q4", lhs, rhs);
        ax.validate(&sig).unwrap();
        assert_eq!(ax.label(), "q4");
        assert_eq!(ax.head_op(), sig.find_op("FRONT"));
    }

    #[test]
    fn error_rhs_is_allowed() {
        let sig = sig();
        let item = sig.find_sort("Item").unwrap();
        // FRONT(NEW) = error
        let lhs = sig
            .apply("FRONT", vec![sig.apply("NEW", vec![]).unwrap()])
            .unwrap();
        let ax = Axiom::new("q3", lhs, Term::Error(item));
        ax.validate(&sig).unwrap();
    }

    #[test]
    fn sort_mismatch_between_sides_is_rejected() {
        let sig = sig();
        let lhs = sig
            .apply("FRONT", vec![sig.apply("NEW", vec![]).unwrap()])
            .unwrap();
        let rhs = sig.apply("NEW", vec![]).unwrap(); // Queue, not Item
        let err = Axiom::new("bad", lhs, rhs).validate(&sig).unwrap_err();
        assert!(matches!(err, CoreError::SortMismatch { .. }));
        assert!(err.to_string().contains("axiom bad"));
    }

    #[test]
    fn bare_variable_lhs_is_rejected() {
        let sig = sig();
        let q = Term::Var(sig.find_var("q").unwrap());
        let err = Axiom::new("bad", q.clone(), q).validate(&sig).unwrap_err();
        assert!(matches!(err, CoreError::IllFormedAxiom { .. }));
    }

    #[test]
    fn error_lhs_is_rejected() {
        let sig = sig();
        let queue = sig.find_sort("Queue").unwrap();
        let rhs = sig.apply("NEW", vec![]).unwrap();
        let err = Axiom::new("bad", Term::Error(queue), rhs)
            .validate(&sig)
            .unwrap_err();
        assert!(matches!(err, CoreError::IllFormedAxiom { .. }));
    }

    #[test]
    fn ite_lhs_is_rejected() {
        let sig = sig();
        let new = sig.apply("NEW", vec![]).unwrap();
        let lhs = Term::ite(sig.tt(), new.clone(), new.clone());
        let err = Axiom::new("bad", lhs, new).validate(&sig).unwrap_err();
        assert!(matches!(err, CoreError::IllFormedAxiom { .. }));
    }

    #[test]
    fn invented_rhs_variable_is_rejected() {
        let sig = sig();
        let i = Term::Var(sig.find_var("i").unwrap());
        // FRONT(NEW) = i — i does not occur on the left.
        let lhs = sig
            .apply("FRONT", vec![sig.apply("NEW", vec![]).unwrap()])
            .unwrap();
        let err = Axiom::new("bad", lhs, i).validate(&sig).unwrap_err();
        match err {
            CoreError::IllFormedAxiom { reason, .. } => {
                assert!(reason.contains("`i`"), "reason was: {reason}")
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
