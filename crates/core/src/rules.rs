//! Compiled rewrite rules, indexed by head operation.
//!
//! Rules live in `adt-core` (rather than the rewrite crate that executes
//! them) so a [`crate::Session`] can own the compiled rule set alongside
//! the signature and the term arena: every engine borrowing the session
//! then shares one compilation instead of re-deriving it per check.

use std::collections::HashMap;

use crate::{Axiom, OpId, Signature, Spec, Term};

/// One left-to-right rewrite rule derived from an axiom (or added
/// manually, e.g. an induction hypothesis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    label: String,
    lhs: Term,
    rhs: Term,
}

impl Rule {
    /// Creates a rule. The left-hand side must be an application (this is
    /// guaranteed for rules compiled from validated axioms).
    ///
    /// # Panics
    ///
    /// Panics if `lhs` is not an application.
    pub fn new(label: impl Into<String>, lhs: Term, rhs: Term) -> Self {
        assert!(
            matches!(lhs, Term::App(_, _)),
            "rule left-hand side must be an application"
        );
        Rule {
            label: label.into(),
            lhs,
            rhs,
        }
    }

    /// The rule's label, used in traces and diagnostics.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The pattern the rule matches.
    pub fn lhs(&self) -> &Term {
        &self.lhs
    }

    /// The template the rule produces.
    pub fn rhs(&self) -> &Term {
        &self.rhs
    }

    /// The operation at the head of the left-hand side.
    pub fn head(&self) -> OpId {
        match &self.lhs {
            Term::App(op, _) => *op,
            _ => unreachable!("checked in constructor"),
        }
    }
}

impl From<&Axiom> for Rule {
    fn from(ax: &Axiom) -> Self {
        Rule::new(ax.label(), ax.lhs().clone(), ax.rhs().clone())
    }
}

/// A set of rules indexed by the head operation of their left-hand sides,
/// so the engine only tries rules that can possibly match.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    by_head: HashMap<OpId, Vec<Rule>>,
    len: usize,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Compiles every axiom of a specification into a rule.
    pub fn from_spec(spec: &Spec) -> Self {
        let mut rs = RuleSet::new();
        for ax in spec.axioms() {
            rs.add(Rule::from(ax));
        }
        rs
    }

    /// Adds a rule. Rules for the same head are tried in insertion order.
    pub fn add(&mut self, rule: Rule) {
        self.by_head.entry(rule.head()).or_default().push(rule);
        self.len += 1;
    }

    /// The rules whose left-hand side is headed by `op`.
    pub fn for_head(&self, op: OpId) -> &[Rule] {
        self.by_head.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every rule in the set.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.by_head.values().flatten()
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set contains no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any rule is headed by `op` — i.e. whether `op` is *defined*
    /// by the rule set rather than free (a constructor or an unspecified
    /// operation).
    pub fn defines(&self, op: OpId) -> bool {
        !self.for_head(op).is_empty()
    }

    /// A short human-readable summary, e.g. for logging: names of defined
    /// operations with their rule counts.
    pub fn summary(&self, sig: &Signature) -> String {
        let mut entries: Vec<_> = self
            .by_head
            .iter()
            .map(|(op, rules)| format!("{}:{}", sig.op(*op).name(), rules.len()))
            .collect();
        entries.sort();
        entries.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBuilder;

    fn tiny_spec() -> Spec {
        let mut b = SpecBuilder::new("Tiny");
        let s = b.sort("S");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
        let x = b.var("x", s);
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [Term::Var(x)])]), ff);
        b.build().unwrap()
    }

    #[test]
    fn compiles_axioms_indexed_by_head() {
        let spec = tiny_spec();
        let rs = RuleSet::from_spec(&spec);
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        let is_zero = spec.sig().find_op("IS_ZERO?").unwrap();
        assert_eq!(rs.for_head(is_zero).len(), 2);
        assert!(rs.defines(is_zero));
        let zero = spec.sig().find_op("ZERO").unwrap();
        assert!(!rs.defines(zero));
        assert_eq!(rs.for_head(zero), &[]);
    }

    #[test]
    fn rules_keep_insertion_order_per_head() {
        let spec = tiny_spec();
        let rs = RuleSet::from_spec(&spec);
        let is_zero = spec.sig().find_op("IS_ZERO?").unwrap();
        let labels: Vec<_> = rs.for_head(is_zero).iter().map(Rule::label).collect();
        assert_eq!(labels, vec!["z1", "z2"]);
    }

    #[test]
    fn summary_lists_defined_ops() {
        let spec = tiny_spec();
        let rs = RuleSet::from_spec(&spec);
        assert_eq!(rs.summary(spec.sig()), "IS_ZERO?:2");
    }

    #[test]
    #[should_panic(expected = "left-hand side must be an application")]
    fn variable_lhs_panics() {
        let spec = tiny_spec();
        let x = spec.sig().find_var("x").unwrap();
        let _ = Rule::new("bad", Term::Var(x), Term::Var(x));
    }

    #[test]
    fn manual_rule_addition() {
        let spec = tiny_spec();
        let mut rs = RuleSet::from_spec(&spec);
        let x = spec.sig().find_var("x").unwrap();
        let succ = spec.sig().find_op("SUCC").unwrap();
        // A (nonsensical but well-formed) extra rule: SUCC(x) -> x.
        rs.add(Rule::new(
            "extra",
            Term::App(succ, vec![Term::Var(x)]),
            Term::Var(x),
        ));
        assert_eq!(rs.len(), 3);
        assert!(rs.defines(succ));
    }
}
