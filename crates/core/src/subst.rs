//! Substitutions: finite maps from variables to terms.

use std::collections::HashMap;

use crate::ids::VarId;
use crate::term::Term;

/// A substitution `σ`, mapping finitely many variables to terms.
///
/// Applying a substitution replaces every mapped variable occurrence in a
/// term simultaneously; unmapped variables are left untouched.
///
/// ```
/// use adt_core::{Signature, Subst, Term};
///
/// let mut sig = Signature::new();
/// let q = sig.add_sort("Queue").unwrap();
/// let new = sig.add_ctor("NEW", vec![], q).unwrap();
/// let v = sig.add_var("q", q).unwrap();
///
/// let mut s = Subst::new();
/// s.bind(v, Term::constant(new));
/// assert_eq!(s.apply(&Term::Var(v)), Term::constant(new));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<VarId, Term>,
}

impl Subst {
    /// The empty (identity) substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// A substitution with a single binding.
    pub fn single(var: VarId, term: Term) -> Self {
        let mut s = Subst::new();
        s.bind(var, term);
        s
    }

    /// Binds `var` to `term`, replacing any previous binding.
    pub fn bind(&mut self, var: VarId, term: Term) {
        self.map.insert(var, term);
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: VarId) -> Option<&Term> {
        self.map.get(&var)
    }

    /// Whether `var` is in the domain of the substitution.
    pub fn binds(&self, var: VarId) -> bool {
        self.map.contains_key(&var)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution is the identity.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Term)> {
        self.map.iter().map(|(&v, t)| (v, t))
    }

    /// Applies the substitution to `term`, returning a new term.
    pub fn apply(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| term.clone()),
            Term::Error(_) => term.clone(),
            Term::App(op, args) => Term::App(*op, args.iter().map(|a| self.apply(a)).collect()),
            Term::Ite(ite) => Term::ite(
                self.apply(&ite.cond),
                self.apply(&ite.then_branch),
                self.apply(&ite.else_branch),
            ),
        }
    }

    /// Composes two substitutions: `self.compose(&other)` behaves like
    /// applying `self` first, then `other`.
    ///
    /// Formally, `(σ ∘ τ)(t) = τ(σ(t))` for every term `t`.
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut out = Subst::new();
        for (v, t) in self.iter() {
            out.bind(v, other.apply(t));
        }
        for (v, t) in other.iter() {
            if !out.binds(v) {
                out.bind(v, t.clone());
            }
        }
        out
    }
}

impl FromIterator<(VarId, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (VarId, Term)>>(iter: I) -> Self {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

impl Extend<(VarId, Term)> for Subst {
    fn extend<I: IntoIterator<Item = (VarId, Term)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;

    fn setup() -> (Signature, VarId, VarId, Term, Term) {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_ctor("A", vec![], item).unwrap();
        let q = sig.add_var("q", queue).unwrap();
        let i = sig.add_var("i", item).unwrap();
        let new = sig.apply("NEW", vec![]).unwrap();
        let a = sig.apply("A", vec![]).unwrap();
        (sig, q, i, new, a)
    }

    #[test]
    fn apply_replaces_all_occurrences_simultaneously() {
        let (sig, q, i, new, a) = setup();
        let term = sig
            .apply(
                "ADD",
                vec![
                    sig.apply("ADD", vec![Term::Var(q), Term::Var(i)]).unwrap(),
                    Term::Var(i),
                ],
            )
            .unwrap();
        let mut s = Subst::new();
        s.bind(q, new.clone());
        s.bind(i, a.clone());
        let applied = s.apply(&term);
        let expected = sig
            .apply(
                "ADD",
                vec![sig.apply("ADD", vec![new, a.clone()]).unwrap(), a],
            )
            .unwrap();
        assert_eq!(applied, expected);
        assert!(applied.is_ground());
    }

    #[test]
    fn unmapped_variables_are_untouched() {
        let (_sig, q, i, new, _a) = setup();
        let s = Subst::single(q, new);
        assert_eq!(s.apply(&Term::Var(i)), Term::Var(i));
        assert!(!s.binds(i));
        assert!(s.binds(q));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_distributes_through_ite_and_error() {
        let (sig, q, i, new, a) = setup();
        let item = sig.find_sort("Item").unwrap();
        let ite = Term::ite(sig.tt(), Term::Var(i), Term::Error(item));
        let mut s = Subst::new();
        s.bind(i, a.clone());
        s.bind(q, new);
        let applied = s.apply(&ite);
        assert_eq!(applied, Term::ite(sig.tt(), a, Term::Error(item)));
    }

    #[test]
    fn composition_law_holds() {
        let (sig, q, i, new, a) = setup();
        // σ = {q ↦ ADD(q, i)}, τ = {q ↦ NEW, i ↦ A}
        let add_qi = sig.apply("ADD", vec![Term::Var(q), Term::Var(i)]).unwrap();
        let sigma = Subst::single(q, add_qi);
        let mut tau = Subst::new();
        tau.bind(q, new);
        tau.bind(i, a);

        let composed = sigma.compose(&tau);
        let term = sig.apply("ADD", vec![Term::Var(q), Term::Var(i)]).unwrap();
        assert_eq!(composed.apply(&term), tau.apply(&sigma.apply(&term)));
    }

    #[test]
    fn from_iterator_and_extend() {
        let (_sig, q, i, new, a) = setup();
        let s: Subst = vec![(q, new.clone())].into_iter().collect();
        assert_eq!(s.get(q), Some(&new));
        let mut s2 = s.clone();
        s2.extend(vec![(i, a.clone())]);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get(i), Some(&a));
    }
}
