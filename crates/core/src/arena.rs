//! Hash-consed term storage: [`TermArena`] and [`TermId`].
//!
//! The rewrite engine manipulates many closely-related terms — every
//! normalization step rebuilds a term that shares almost all of its
//! structure with its predecessor, and observers like `FRONT` re-derive
//! the same subterms over and over. Representing terms as trees of owned
//! [`Term`] nodes makes each of those operations a deep clone; this module
//! instead *interns* every distinct node once and hands out copyable
//! [`TermId`]s, so
//!
//! * structurally equal terms always receive the same id — equality is a
//!   single integer compare;
//! * per-node facts the engine consults constantly (groundness, depth, a
//!   structural hash) are computed once at interning time and read back in
//!   O(1);
//! * building a term that shares subterms with existing ones allocates
//!   only the genuinely new nodes.
//!
//! # Invariants
//!
//! [`TermId`]s are **process-local handles**: they index the arena that
//! produced them and are meaningless anywhere else. They must never be
//! serialized, compared across arenas, or stored in any artifact that
//! outlives the arena — anything that crosses an arena boundary does so as
//! a reconstructed [`Term`] ([`TermArena::to_term`]). The
//! [`TermArena::structural_hash`], by contrast, is a pure function of term
//! *structure* (the same term hashes identically in every arena and every
//! process), which is what lets an arena-agnostic cache key its entries by
//! hash and confirm candidates with [`TermArena::term_eq`].
//!
//! The arena is append-only and unsynchronized by design: engines create
//! one arena per normalization run, keeping the hot path free of locks,
//! and drop it wholesale when the run completes.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::ids::{OpId, SortId, VarId};
use crate::term::{Ite, Term};

/// A [`Hasher`] that passes an already-mixed `u64` key through unchanged.
///
/// The dedup map is keyed by [`mix`]-scrambled structural hashes, which
/// already spread entropy across all 64 bits; running them through the
/// default SipHash would cost more than the table probe it protects.
/// Only usable for `u64` keys — anything else reaches the `unreachable!`.
#[derive(Default)]
struct PassthroughHasher(u64);

impl Hasher for PassthroughHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PassthroughHasher only hashes u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PassthroughHasher>>;

/// A handle to an interned term node inside one [`TermArena`].
///
/// Copyable and order/hashable so it can key dense side tables. Two ids
/// from the *same* arena are equal exactly when the terms they denote are
/// structurally equal; ids from different arenas are unrelated (see the
/// module docs for the invariants).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw index of this id inside its arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One interned term node: the same shape as [`Term`], with child terms
/// replaced by ids into the owning arena.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// A typed free variable.
    Var(VarId),
    /// Application of an operation to interned arguments.
    App(OpId, Box<[TermId]>),
    /// The built-in conditional: condition, then-branch, else-branch.
    Ite(TermId, TermId, TermId),
    /// The distinguished `error` value of the given sort.
    Error(SortId),
}

/// Per-node facts cached at interning time.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Deterministic structural hash (stable across arenas and processes).
    hash: u64,
    /// Height of the term (a leaf has depth 1), saturating.
    depth: u32,
    /// Whether the term contains no variables.
    ground: bool,
}

/// Mixes one value into a running structural hash. The constants are the
/// usual Fibonacci/xorshift multipliers; what matters is that the function
/// is fixed (no per-process seed), so hashes agree across arenas.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let x = (h.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    x ^ (x >> 32)
}

const TAG_VAR: u64 = 0x9e37_79b9_7f4a_7c15;
const TAG_APP: u64 = 0xbf58_476d_1ce4_e5b9;
const TAG_ITE: u64 = 0x94d0_49bb_1331_11eb;
const TAG_ERROR: u64 = 0xd6e8_feb8_6659_fd93;

/// An append-only, hash-consing store of term nodes.
///
/// ```
/// use adt_core::{Signature, Term, TermArena};
///
/// let mut sig = Signature::new();
/// let s = sig.add_sort("S")?;
/// let c = sig.add_ctor("C", vec![], s)?;
/// let f = sig.add_op("F", vec![s], s)?;
///
/// let mut arena = TermArena::new();
/// let term = Term::App(f, vec![Term::constant(c)]);
/// let a = arena.intern(&term);
/// let b = arena.intern(&term);
/// assert_eq!(a, b, "equal terms intern to the same id");
/// assert!(arena.is_ground(a));
/// assert_eq!(arena.depth(a), 2);
/// assert_eq!(arena.to_term(a), term);
/// # Ok::<(), adt_core::CoreError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct TermArena {
    nodes: Vec<TermNode>,
    meta: Vec<Meta>,
    /// Structural hash → ids of nodes with that hash (almost always one).
    dedup: PrehashedMap<Vec<TermId>>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TermArena::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate heap footprint of the arena in bytes: node and meta
    /// storage, argument slices, and the dedup table. Telemetry only —
    /// counts capacities where cheap to read, so it tracks allocations,
    /// not live data.
    pub fn approx_bytes(&self) -> usize {
        let args: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                TermNode::App(_, args) => args.len() * std::mem::size_of::<TermId>(),
                _ => 0,
            })
            .sum();
        let dedup: usize = self
            .dedup
            .values()
            .map(|bucket| {
                std::mem::size_of::<u64>()
                    + std::mem::size_of::<Vec<TermId>>()
                    + bucket.capacity() * std::mem::size_of::<TermId>()
            })
            .sum();
        self.nodes.capacity() * std::mem::size_of::<TermNode>()
            + self.meta.capacity() * std::mem::size_of::<Meta>()
            + args
            + dedup
    }

    /// The node an id denotes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different arena (and is out of
    /// range for this one).
    #[inline]
    pub fn node(&self, id: TermId) -> &TermNode {
        &self.nodes[id.index()]
    }

    /// Whether the denoted term contains no variables. O(1): cached at
    /// interning time.
    #[inline]
    pub fn is_ground(&self, id: TermId) -> bool {
        self.meta[id.index()].ground
    }

    /// Height of the denoted term (a leaf has depth 1), saturating at
    /// `u32::MAX`. O(1): cached at interning time.
    #[inline]
    pub fn depth(&self, id: TermId) -> u32 {
        self.meta[id.index()].depth
    }

    /// A deterministic hash of the denoted term's *structure*. Equal terms
    /// hash equally in every arena and every process, so the hash (unlike
    /// the id) may key caches that outlive this arena. O(1): cached at
    /// interning time.
    #[inline]
    pub fn structural_hash(&self, id: TermId) -> u64 {
        self.meta[id.index()].hash
    }

    fn meta_of(&self, node: &TermNode) -> Meta {
        match node {
            TermNode::Var(v) => Meta {
                hash: mix(TAG_VAR, v.index() as u64),
                depth: 1,
                ground: false,
            },
            TermNode::Error(s) => Meta {
                hash: mix(TAG_ERROR, s.index() as u64),
                depth: 1,
                ground: true,
            },
            TermNode::App(op, args) => {
                let mut hash = mix(TAG_APP, op.index() as u64);
                let mut depth = 0u32;
                let mut ground = true;
                for &a in args.iter() {
                    let m = self.meta[a.index()];
                    hash = mix(hash, m.hash);
                    depth = depth.max(m.depth);
                    ground &= m.ground;
                }
                Meta {
                    hash,
                    depth: depth.saturating_add(1),
                    ground,
                }
            }
            TermNode::Ite(c, t, e) => {
                let mut hash = TAG_ITE;
                let mut depth = 0u32;
                let mut ground = true;
                for id in [c, t, e] {
                    let m = self.meta[id.index()];
                    hash = mix(hash, m.hash);
                    depth = depth.max(m.depth);
                    ground &= m.ground;
                }
                Meta {
                    hash,
                    depth: depth.saturating_add(1),
                    ground,
                }
            }
        }
    }

    fn intern_node(&mut self, node: TermNode) -> TermId {
        let meta = self.meta_of(&node);
        if let Some(bucket) = self.dedup.get(&meta.hash) {
            for &id in bucket {
                if self.nodes[id.index()] == node {
                    return id;
                }
            }
        }
        // A 2^32-node arena is hundreds of gigabytes of terms; failing
        // loudly here is strictly better than aliasing two distinct terms.
        let id = TermId(
            u32::try_from(self.nodes.len()).expect("term arena exceeded the u32 id space"),
        );
        self.nodes.push(node);
        self.meta.push(meta);
        self.dedup.entry(meta.hash).or_default().push(id);
        id
    }

    /// Interns a variable.
    pub fn var(&mut self, v: VarId) -> TermId {
        self.intern_node(TermNode::Var(v))
    }

    /// Interns an `error` value of the given sort.
    pub fn error(&mut self, s: SortId) -> TermId {
        self.intern_node(TermNode::Error(s))
    }

    /// Interns an application of `op` to already-interned arguments.
    pub fn app(&mut self, op: OpId, args: Vec<TermId>) -> TermId {
        self.intern_node(TermNode::App(op, args.into_boxed_slice()))
    }

    /// Interns a conditional over already-interned parts.
    pub fn ite(&mut self, cond: TermId, then_branch: TermId, else_branch: TermId) -> TermId {
        self.intern_node(TermNode::Ite(cond, then_branch, else_branch))
    }

    /// Interns a [`Term`], sharing every subterm already present.
    ///
    /// Iterative (explicit stack), so terms nested far beyond the native
    /// call stack intern fine.
    pub fn intern(&mut self, term: &Term) -> TermId {
        enum Frame<'t> {
            Visit(&'t Term),
            Build(&'t Term),
        }
        let mut stack = vec![Frame::Visit(term)];
        let mut done: Vec<TermId> = Vec::new();
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(t) => match t {
                    Term::Var(v) => done.push(self.var(*v)),
                    Term::Error(s) => done.push(self.error(*s)),
                    Term::App(_, args) => {
                        stack.push(Frame::Build(t));
                        for a in args.iter().rev() {
                            stack.push(Frame::Visit(a));
                        }
                    }
                    Term::Ite(ite) => {
                        stack.push(Frame::Build(t));
                        stack.push(Frame::Visit(&ite.else_branch));
                        stack.push(Frame::Visit(&ite.then_branch));
                        stack.push(Frame::Visit(&ite.cond));
                    }
                },
                Frame::Build(t) => match t {
                    Term::App(op, args) => {
                        let children = done.split_off(done.len() - args.len());
                        done.push(self.app(*op, children));
                    }
                    Term::Ite(_) => {
                        let [c, th, e]: [TermId; 3] = done
                            .split_off(done.len() - 3)
                            .try_into()
                            .expect("three children were interned");
                        done.push(self.ite(c, th, e));
                    }
                    Term::Var(_) | Term::Error(_) => unreachable!("leaves are never deferred"),
                },
            }
        }
        done.pop().expect("interning produces exactly one root")
    }

    /// Reconstructs the denoted [`Term`]. Iterative, like
    /// [`TermArena::intern`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different arena.
    pub fn to_term(&self, id: TermId) -> Term {
        enum Frame {
            Visit(TermId),
            Build(TermId),
        }
        let mut stack = vec![Frame::Visit(id)];
        let mut done: Vec<Term> = Vec::new();
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(id) => match self.node(id) {
                    TermNode::Var(v) => done.push(Term::Var(*v)),
                    TermNode::Error(s) => done.push(Term::Error(*s)),
                    TermNode::App(_, args) => {
                        stack.push(Frame::Build(id));
                        for &a in args.iter().rev() {
                            stack.push(Frame::Visit(a));
                        }
                    }
                    TermNode::Ite(c, t, e) => {
                        stack.push(Frame::Build(id));
                        stack.push(Frame::Visit(*e));
                        stack.push(Frame::Visit(*t));
                        stack.push(Frame::Visit(*c));
                    }
                },
                Frame::Build(id) => match self.node(id) {
                    TermNode::App(op, args) => {
                        let children = done.split_off(done.len() - args.len());
                        done.push(Term::App(*op, children));
                    }
                    TermNode::Ite(..) => {
                        let e = done.pop().expect("else-branch was built");
                        let t = done.pop().expect("then-branch was built");
                        let c = done.pop().expect("condition was built");
                        done.push(Term::ite(c, t, e));
                    }
                    TermNode::Var(_) | TermNode::Error(_) => {
                        unreachable!("leaves are never deferred")
                    }
                },
            }
        }
        done.pop().expect("reconstruction produces exactly one root")
    }

    /// Whether the denoted term is structurally equal to `term`, without
    /// allocating. Iterative, so arbitrarily deep comparands are fine.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different arena.
    pub fn term_eq(&self, id: TermId, term: &Term) -> bool {
        let mut stack: Vec<(TermId, &Term)> = vec![(id, term)];
        while let Some((id, t)) = stack.pop() {
            match (self.node(id), t) {
                (TermNode::Var(a), Term::Var(b)) => {
                    if a != b {
                        return false;
                    }
                }
                (TermNode::Error(a), Term::Error(b)) => {
                    if a != b {
                        return false;
                    }
                }
                (TermNode::App(op1, args1), Term::App(op2, args2)) => {
                    if op1 != op2 || args1.len() != args2.len() {
                        return false;
                    }
                    stack.extend(args1.iter().copied().zip(args2.iter()));
                }
                (TermNode::Ite(c, th, e), Term::Ite(ite)) => {
                    stack.push((*e, &ite.else_branch));
                    stack.push((*th, &ite.then_branch));
                    stack.push((*c, &ite.cond));
                }
                _ => return false,
            }
        }
        true
    }

    /// Convenience: interns all parts of an [`Ite`].
    pub fn intern_ite(&mut self, ite: &Ite) -> TermId {
        let c = self.intern(&ite.cond);
        let t = self.intern(&ite.then_branch);
        let e = self.intern(&ite.else_branch);
        self.ite(c, t, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;

    fn sig() -> Signature {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_ctor("A", vec![], item).unwrap();
        sig.add_op("FRONT", vec![queue], item).unwrap();
        sig.add_op("IS_EMPTY?", vec![queue], sig.bool_sort()).unwrap();
        sig.add_var("q", queue).unwrap();
        sig.add_var("i", item).unwrap();
        sig
    }

    fn chain(sig: &Signature, n: usize) -> Term {
        let mut t = sig.apply("NEW", vec![]).unwrap();
        for _ in 0..n {
            let a = sig.apply("A", vec![]).unwrap();
            t = sig.apply("ADD", vec![t, a]).unwrap();
        }
        t
    }

    #[test]
    fn equal_terms_share_one_id() {
        let sig = sig();
        let mut arena = TermArena::new();
        let t = chain(&sig, 3);
        let a = arena.intern(&t);
        let b = arena.intern(&t);
        assert_eq!(a, b);
        // Shared subterms don't re-allocate: interning a 4-chain after a
        // 3-chain adds exactly one node.
        let before = arena.len();
        arena.intern(&chain(&sig, 4));
        assert_eq!(arena.len(), before + 1);
    }

    #[test]
    fn roundtrip_reconstructs_the_term() {
        let sig = sig();
        let mut arena = TermArena::new();
        let qv = Term::Var(sig.find_var("q").unwrap());
        let iv = Term::Var(sig.find_var("i").unwrap());
        let cond = sig.apply("IS_EMPTY?", vec![qv.clone()]).unwrap();
        let t = Term::ite(
            cond,
            iv,
            sig.apply("FRONT", vec![qv]).unwrap(),
        );
        let id = arena.intern(&t);
        assert_eq!(arena.to_term(id), t);
        assert!(arena.term_eq(id, &t));
    }

    #[test]
    fn cached_bits_match_the_term_methods() {
        let sig = sig();
        let mut arena = TermArena::new();
        let qv = Term::Var(sig.find_var("q").unwrap());
        let ground = chain(&sig, 2);
        let open = sig.apply("FRONT", vec![qv]).unwrap();
        let item = sig.find_sort("Item").unwrap();
        for t in [&ground, &open, &Term::Error(item)] {
            let id = arena.intern(t);
            assert_eq!(arena.is_ground(id), t.is_ground(), "{t:?}");
            assert_eq!(arena.depth(id) as usize, t.depth(), "{t:?}");
        }
    }

    #[test]
    fn structural_hash_is_arena_independent() {
        let sig = sig();
        let t = chain(&sig, 5);
        let u = sig.apply("FRONT", vec![chain(&sig, 5)]).unwrap();
        let mut arena1 = TermArena::new();
        let mut arena2 = TermArena::new();
        // Intern in different orders so the raw ids differ.
        let id_t1 = arena1.intern(&t);
        let id_u1 = arena1.intern(&u);
        let id_u2 = arena2.intern(&u);
        let id_t2 = arena2.intern(&t);
        assert_eq!(arena1.structural_hash(id_t1), arena2.structural_hash(id_t2));
        assert_eq!(arena1.structural_hash(id_u1), arena2.structural_hash(id_u2));
        assert_ne!(
            arena1.structural_hash(id_t1),
            arena1.structural_hash(id_u1),
            "distinct terms should (in practice) hash differently"
        );
    }

    #[test]
    fn term_eq_rejects_structural_differences() {
        let sig = sig();
        let mut arena = TermArena::new();
        let three = chain(&sig, 3);
        let four = chain(&sig, 4);
        let id = arena.intern(&three);
        assert!(arena.term_eq(id, &three));
        assert!(!arena.term_eq(id, &four));
        let front = sig.apply("FRONT", vec![three.clone()]).unwrap();
        assert!(!arena.term_eq(id, &front));
        let item = sig.find_sort("Item").unwrap();
        let queue = sig.find_sort("Queue").unwrap();
        let e = arena.intern(&Term::Error(item));
        assert!(arena.term_eq(e, &Term::Error(item)));
        assert!(!arena.term_eq(e, &Term::Error(queue)));
    }

    #[test]
    fn deep_terms_intern_without_native_recursion() {
        // ~100k-deep chain: recursion anywhere in intern/to_term/term_eq
        // would blow the native stack. The Term itself has a recursive
        // Drop, so the whole test runs on a thread with a large stack.
        std::thread::Builder::new()
            .stack_size(64 << 20)
            .spawn(|| {
                let sig = sig();
                let depth = 100_000;
                // Built from raw nodes: `Signature::apply` would sort-check
                // each prefix recursively (quadratic, and itself deeper
                // than any stack).
                let add = sig.find_op("ADD").unwrap();
                let a = Term::constant(sig.find_op("A").unwrap());
                let mut t = Term::constant(sig.find_op("NEW").unwrap());
                for _ in 0..depth {
                    t = Term::App(add, vec![t, a.clone()]);
                }
                let mut arena = TermArena::new();
                let id = arena.intern(&t);
                assert_eq!(arena.depth(id) as usize, depth + 1);
                assert!(arena.is_ground(id));
                assert!(arena.term_eq(id, &t));
                let back = arena.to_term(id);
                assert_eq!(back.depth(), depth + 1);
            })
            .expect("spawns")
            .join()
            .expect("deep interning must not overflow the stack");
    }
}
