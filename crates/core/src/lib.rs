//! # adt-core — the heterogeneous-algebra substrate
//!
//! This crate implements the formal core of John Guttag's *Abstract Data
//! Types and the Development of Data Structures* (CACM 20(6), 1977): sorts,
//! operator signatures, typed variables, first-order terms with a
//! distinguished strict `error` value and built-in booleans, substitution,
//! pattern matching, syntactic unification, equational axioms, and complete
//! *algebraic specifications*.
//!
//! An algebraic specification of an abstract data type consists of two
//! parts (paper, §2):
//!
//! 1. a **syntactic specification** — the names, domains and ranges of the
//!    operations associated with the type (a [`Signature`]), and
//! 2. a **set of relations** (axioms, [`Axiom`]) that define the meanings of
//!    the operations by stating their relationships to one another.
//!
//! # Example: a fragment of the paper's Queue (§3)
//!
//! ```
//! use adt_core::{SpecBuilder, Term};
//!
//! let mut b = SpecBuilder::new("Queue");
//! let queue = b.sort("Queue");
//! let item = b.param_sort("Item");
//! let new = b.ctor("NEW", [], queue);
//! let add = b.ctor("ADD", [queue, item], queue);
//! let front = b.op("FRONT", [queue], item);
//! let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
//! let q = b.var("q", queue);
//! let i = b.var("i", item);
//!
//! // IS_EMPTY?(NEW) = true
//! let tt = b.tt();
//! b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
//! // FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
//! let lhs = b.app(front, [b.app(add, [Term::Var(q), Term::Var(i)])]);
//! let rhs = Term::ite(
//!     b.app(is_empty, [Term::Var(q)]),
//!     Term::Var(i),
//!     b.app(front, [Term::Var(q)]),
//! );
//! b.axiom("q4", lhs, rhs);
//!
//! let spec = b.build().expect("well-formed spec");
//! assert_eq!(spec.axioms().len(), 2);
//! assert!(spec.sig().op(add).is_constructor());
//! ```
//!
//! The operational reading of axiom sets (rewriting, normalization, symbolic
//! interpretation) lives in `adt-rewrite`; the mechanical
//! sufficient-completeness and consistency checks in `adt-check`; the textual
//! specification language in `adt-dsl`; verification of implementations in
//! `adt-verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod axiom;
mod error;
mod fuel;
mod ids;
mod matching;
mod rng;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
mod rules;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
mod session;
mod signature;
mod spec;
mod subst;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
mod supervise;
mod term;
mod unify;

pub mod display;

pub use arena::{TermArena, TermId, TermNode};
pub use axiom::Axiom;
pub use error::{CoreError, EngineError};
pub use fuel::{ExhaustionCause, Fuel, FuelSpent, DEFAULT_FUEL_STEPS, DEFAULT_MAX_DEPTH};
pub use ids::{OpId, SortId, VarId};
pub use matching::{match_pattern, match_pattern_at_root};
pub use rng::DetRng;
pub use rules::{Rule, RuleSet};
pub use session::{Session, SessionStats, ShardedMemo};
pub use signature::{OpInfo, Signature, SortInfo, VarInfo};
pub use spec::{Spec, SpecBuilder};
pub use subst::Subst;
pub use supervise::{CancelToken, Deadline, Interrupt, Supervisor};
pub use term::{Ite, Position, Term};
pub use unify::{unify, Unifier};

/// Convenient result alias for fallible core operations.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
