//! One interned workspace from DSL to CLI: [`Session`], the sharded
//! normal-form memo it owns, and the [`SessionStats`] observability
//! choke point.
//!
//! The pipeline used to re-create its world on every call: each
//! completeness item, consistency probe, and verification pass built its
//! own rewriter, re-compiled the axioms into rules, and re-interned terms
//! into a throwaway arena. A [`Session`] owns all of that shared state
//! once — the [`Spec`] (and so the [`Signature`]), the compiled
//! [`RuleSet`], a long-lived hash-consing [`TermArena`], the cross-run
//! [`ShardedMemo`], and a session-level normal-form cache — and every
//! layer borrows it instead of rebuilding it.
//!
//! # Id-boundary rules
//!
//! [`TermId`]s handed out by [`Session::intern`] are *session-local*: they
//! index the session arena and are meaningless anywhere else. The
//! evaluation hot path still runs on its own run-local arena (keeping it
//! lock-free); session ids cross into an engine only at the API boundary,
//! where the term is materialized under a read lock, and normal forms
//! cross back by being interned under a write lock. Materializing a
//! [`Term`] from an id is always allowed (it is how anything escapes the
//! session); storing a foreign arena's ids in the session — or session
//! ids in any artifact that outlives the session — never is.
//!
//! # Memo-soundness rule
//!
//! The [`ShardedMemo`] is keyed by the arena-independent structural hash
//! of a ground term, which bakes in [`crate::OpId`] *indices*. Sharing
//! one memo between two rewriters is therefore sound only when their
//! rule sets agree and their signatures assign the same indices to the
//! same operations: extending a signature with **variables only** (case
//! splits, superposition renamings) preserves both, while minting new
//! operations (induction skolem constants) or adding rules (induction
//! hypotheses) does not. Passes that extend the signature with
//! operations must keep private, memo-less rewriters.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crate::arena::{TermArena, TermId};
use crate::rules::RuleSet;
use crate::signature::Signature;
use crate::spec::Spec;
use crate::term::Term;

/// Number of lock shards in the memo table. Sixteen keeps contention low
/// for every worker-pool width this workspace uses while costing only a
/// few hundred bytes when idle.
const MEMO_SHARDS: usize = 16;

/// Passes an already-mixed `u64` key through unchanged: the memo is keyed
/// by [`TermArena::structural_hash`] values, which are well scrambled by
/// construction, so SipHash on top would only add latency to every probe.
#[derive(Default)]
struct PassthroughHasher(u64);

impl Hasher for PassthroughHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PassthroughHasher only hashes u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

type MemoShard = HashMap<u64, Vec<(Term, Term)>, BuildHasherDefault<PassthroughHasher>>;

/// A sharded, mutex-guarded normal-form cache.
///
/// Entries are keyed by the *arena-independent* structural hash of a
/// ground term ([`TermArena::structural_hash`]), with hash collisions
/// resolved by structural comparison against the stored key. Keys and
/// values are stored as plain [`Term`]s, never as arena ids: ids are
/// arena-local and the cache outlives every run (and is shared across
/// worker threads), so terms are re-derived at the cache boundary.
///
/// Entries are distributed across a fixed number of independent
/// `Mutex<HashMap>` shards by hash, so concurrent normalizations from a
/// worker pool mostly lock disjoint shards. The cache stores only
/// context-free facts (ground term → normal form), so any interleaving of
/// insertions yields the same lookups — sharing one memo across threads
/// cannot change results. See the module docs for when sharing one memo
/// across *rewriters* is sound.
///
/// Hit/miss totals are counted with relaxed atomics; they are telemetry
/// (surfaced through [`SessionStats`]) and never affect results.
#[derive(Debug, Default)]
pub struct ShardedMemo {
    shards: Vec<Mutex<MemoShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedMemo {
    /// An empty memo.
    pub fn new() -> Self {
        ShardedMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<MemoShard> {
        &self.shards[(hash as usize) % MEMO_SHARDS]
    }

    /// Looks up the cached normal form of the term `id` denotes in
    /// `arena`, confirming hash candidates structurally.
    pub fn get(&self, arena: &TermArena, id: TermId) -> Option<Term> {
        let hash = arena.structural_hash(id);
        let guard = self
            .shard(hash)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let found = guard
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|(key, _)| arena.term_eq(id, key)))
            .map(|(_, nf)| nf.clone());
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records `id → nf` (both re-derived as [`Term`]s at this boundary).
    pub fn insert(&self, arena: &TermArena, id: TermId, nf: TermId) {
        let hash = arena.structural_hash(id);
        let key = arena.to_term(id);
        let value = arena.to_term(nf);
        let mut guard = self
            .shard(hash)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let bucket = guard.entry(hash).or_default();
        // Another worker may have raced us to the same fact; the check
        // and the push happen under one shard lock, so buckets never
        // hold duplicate keys.
        if !bucket.iter().any(|(existing, _)| existing == &key) {
            bucket.push((key, value));
        }
    }

    /// Total cached facts across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the memo holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far (telemetry; relaxed ordering).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far (telemetry; relaxed ordering).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Clone for ShardedMemo {
    fn clone(&self) -> Self {
        ShardedMemo {
            shards: self
                .shards
                .iter()
                .map(|s| {
                    Mutex::new(
                        s.lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .clone(),
                    )
                })
                .collect(),
            hits: AtomicU64::new(self.hits()),
            misses: AtomicU64::new(self.misses()),
        }
    }
}

/// A snapshot of a session's observability counters.
///
/// Everything here is *telemetry*: two runs of the same checks produce
/// identical reports but different stats (memo hits depend on what ran
/// before). Report comparisons must never include these figures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Distinct terms interned into the session arena.
    pub interned_terms: usize,
    /// Approximate bytes held by the session arena.
    pub arena_bytes: usize,
    /// Cross-run memo lookup hits.
    pub memo_hits: u64,
    /// Cross-run memo lookup misses.
    pub memo_misses: u64,
    /// Facts currently in the cross-run memo.
    pub memo_entries: usize,
    /// Session-level normal-form cache hits (id-keyed; the cheapest path).
    pub nf_cache_hits: u64,
    /// Normalizations routed through the session.
    pub normalizations: u64,
    /// Rewrite steps performed by those normalizations.
    pub rewrite_steps: u64,
}

impl SessionStats {
    /// Renders the stats in the `adt check --stats` format.
    pub fn render(&self) -> String {
        let mut out = format!(
            "stats: session arena {} term(s), ~{} byte(s)\n",
            self.interned_terms, self.arena_bytes
        );
        out.push_str(&format!(
            "stats: session memo {} entr{}, {} hit(s) / {} miss(es), nf-cache {} hit(s)\n",
            self.memo_entries,
            if self.memo_entries == 1 { "y" } else { "ies" },
            self.memo_hits,
            self.memo_misses,
            self.nf_cache_hits
        ));
        out.push_str(&format!(
            "stats: session {} normalization(s), {} rewrite step(s)\n",
            self.normalizations, self.rewrite_steps
        ));
        out
    }
}

/// One long-lived engine workspace: the specification, its compiled
/// rules, a shared hash-consing term arena, the cross-run memo, and a
/// session-level normal-form cache, plus the counters behind
/// [`SessionStats`].
///
/// A session is `Sync`: the arena sits behind an `RwLock` that is taken
/// only at API boundaries (interning in, materializing out), the memo is
/// internally sharded, and the counters are atomics — the evaluation hot
/// path itself never touches any session lock (engines run on their own
/// run-local arenas and consult the shared memo between runs).
///
/// ```
/// use adt_core::{Session, SpecBuilder, Term};
///
/// let mut b = SpecBuilder::new("Tiny");
/// let s = b.sort("S");
/// let c = b.ctor("C", [], s);
/// b.op("F", [s], s);
/// let spec = b.build()?;
///
/// let session = Session::new(spec);
/// let t = session.sig().apply("F", vec![session.sig().apply("C", vec![])?])?;
/// let id = session.intern(&t);
/// assert_eq!(session.intern(&t), id, "equal terms intern to the same id");
/// assert_eq!(session.term(id), t);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Session {
    spec: Spec,
    rules: RuleSet,
    arena: RwLock<TermArena>,
    memo: Arc<ShardedMemo>,
    /// Session-id → session-id normal forms, for terms normalized through
    /// the session API. Sound because entries are only recorded by
    /// engines running the session's own rule set.
    nf_cache: Mutex<HashMap<TermId, TermId>>,
    nf_hits: AtomicU64,
    normalizations: AtomicU64,
    rewrite_steps: AtomicU64,
}

impl Session {
    /// Builds a session for `spec`, compiling its axioms once.
    pub fn new(spec: Spec) -> Self {
        let rules = RuleSet::from_spec(&spec);
        Session {
            spec,
            rules,
            arena: RwLock::new(TermArena::new()),
            memo: Arc::new(ShardedMemo::new()),
            nf_cache: Mutex::new(HashMap::new()),
            nf_hits: AtomicU64::new(0),
            normalizations: AtomicU64::new(0),
            rewrite_steps: AtomicU64::new(0),
        }
    }

    /// The specification this session serves.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The specification's signature.
    pub fn sig(&self) -> &Signature {
        self.spec.sig()
    }

    /// The compiled rule set (the specification's axioms).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The cross-run normal-form memo. Clone the `Arc` to share it with a
    /// rewriter — see the module docs for when that is sound.
    pub fn memo(&self) -> &Arc<ShardedMemo> {
        &self.memo
    }

    /// Interns a term into the session arena (write lock; boundary only).
    pub fn intern(&self, term: &Term) -> TermId {
        self.arena
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .intern(term)
    }

    /// Materializes the term a session id denotes (read lock).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this session.
    pub fn term(&self, id: TermId) -> Term {
        self.arena
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .to_term(id)
    }

    /// Whether the denoted term is structurally equal to `term`, without
    /// materializing (read lock).
    pub fn term_eq(&self, id: TermId, term: &Term) -> bool {
        self.arena
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .term_eq(id, term)
    }

    /// The cached normal form of a session id, if one was recorded.
    pub fn cached_nf(&self, id: TermId) -> Option<TermId> {
        let found = self
            .nf_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&id)
            .copied();
        if found.is_some() {
            self.nf_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records `id → nf` in the session normal-form cache. Only engines
    /// running the session's own rule set may call this (see the module
    /// docs); a normal form is its own normal form, so `nf → nf` is
    /// recorded too.
    pub fn record_nf(&self, id: TermId, nf: TermId) {
        let mut guard = self
            .nf_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.insert(id, nf);
        guard.insert(nf, nf);
    }

    /// Folds one normalization's step count into the session counters.
    pub fn note_normalization(&self, steps: u64) {
        self.normalizations.fetch_add(1, Ordering::Relaxed);
        self.rewrite_steps.fetch_add(steps, Ordering::Relaxed);
    }

    /// A snapshot of the session's counters.
    pub fn stats(&self) -> SessionStats {
        let arena = self.arena.read().unwrap_or_else(PoisonError::into_inner);
        SessionStats {
            interned_terms: arena.len(),
            arena_bytes: arena.approx_bytes(),
            memo_hits: self.memo.hits(),
            memo_misses: self.memo.misses(),
            memo_entries: self.memo.len(),
            nf_cache_hits: self.nf_hits.load(Ordering::Relaxed),
            normalizations: self.normalizations.load(Ordering::Relaxed),
            rewrite_steps: self.rewrite_steps.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecBuilder;

    fn tiny_spec() -> Spec {
        let mut b = SpecBuilder::new("Tiny");
        let s = b.sort("S");
        let zero = b.ctor("ZERO", [], s);
        let succ = b.ctor("SUCC", [s], s);
        let is_zero = b.op("IS_ZERO?", [s], b.bool_sort());
        let x = b.var("x", s);
        let tt = b.tt();
        let ff = b.ff();
        b.axiom("z1", b.app(is_zero, [b.app(zero, [])]), tt);
        b.axiom("z2", b.app(is_zero, [b.app(succ, [Term::Var(x)])]), ff);
        b.build().unwrap()
    }

    #[test]
    fn session_owns_compiled_rules_and_an_arena() {
        let session = Session::new(tiny_spec());
        assert_eq!(session.rules().len(), 2);
        let zero = session.sig().apply("ZERO", vec![]).unwrap();
        let id = session.intern(&zero);
        assert!(session.term_eq(id, &zero));
        assert_eq!(session.term(id), zero);
        let stats = session.stats();
        assert_eq!(stats.interned_terms, 1);
        assert!(stats.arena_bytes > 0);
    }

    #[test]
    fn nf_cache_round_trips_and_counts_hits() {
        let session = Session::new(tiny_spec());
        let zero = session.sig().apply("ZERO", vec![]).unwrap();
        let t = session.sig().apply("IS_ZERO?", vec![zero.clone()]).unwrap();
        let id = session.intern(&t);
        let nf = session.intern(&session.sig().tt());
        assert_eq!(session.cached_nf(id), None);
        session.record_nf(id, nf);
        assert_eq!(session.cached_nf(id), Some(nf));
        // A normal form is its own normal form.
        assert_eq!(session.cached_nf(nf), Some(nf));
        assert_eq!(session.stats().nf_cache_hits, 2);
    }

    #[test]
    fn memo_counts_hits_and_misses() {
        let memo = ShardedMemo::new();
        let mut arena = TermArena::new();
        let spec = tiny_spec();
        let zero = spec.sig().apply("ZERO", vec![]).unwrap();
        let t = spec.sig().apply("IS_ZERO?", vec![zero]).unwrap();
        let id = arena.intern(&t);
        let nf = arena.intern(&spec.sig().tt());
        assert_eq!(memo.get(&arena, id), None);
        memo.insert(&arena, id, nf);
        assert_eq!(memo.get(&arena, id), Some(spec.sig().tt()));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1);
        assert!(!memo.is_empty());
        // Cloning preserves both facts and counters.
        let copy = memo.clone();
        assert_eq!(copy.len(), 1);
        assert_eq!(copy.hits(), 1);
    }

    #[test]
    fn stats_render_mentions_arena_and_memo() {
        let session = Session::new(tiny_spec());
        let zero = session.sig().apply("ZERO", vec![]).unwrap();
        session.intern(&zero);
        session.note_normalization(7);
        let text = session.stats().render();
        assert!(text.contains("session arena 1 term(s)"), "{text}");
        assert!(text.contains("session memo"), "{text}");
        assert!(text.contains("7 rewrite step(s)"), "{text}");
    }
}
