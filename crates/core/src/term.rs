//! First-order terms over a signature.
//!
//! Terms are the words of the algebra: typed variables, operator
//! applications, the distinguished strict `error` value (one per sort), and
//! the built-in polymorphic conditional `if-then-else` that the paper's
//! axioms use on their right-hand sides.

use crate::error::CoreError;
use crate::ids::{OpId, SortId, VarId};
use crate::signature::Signature;
use crate::Result;

/// The three-way conditional `if cond then then_branch else else_branch`.
///
/// The paper treats `if-then-else` as an ambient, polymorphic construct
/// rather than an operation of any one type, so we model it as a term
/// former. Its sort is the common sort of the two branches; the condition
/// must be of sort `Bool`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ite {
    /// The boolean condition.
    pub cond: Term,
    /// Value of the conditional when the condition is `true`.
    pub then_branch: Term,
    /// Value of the conditional when the condition is `false`.
    pub else_branch: Term,
}

/// A first-order term: variable, application, conditional, or `error`.
///
/// `error` is the paper's distinguished value "with the property that the
/// value of any operation applied to an argument list containing error is
/// error" (§3). Strict propagation is enforced by the rewrite engine in
/// `adt-rewrite`; at the term level `error` is simply a typed constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A typed free variable declared in the signature.
    Var(VarId),
    /// Application of an operation to argument terms (possibly zero).
    App(OpId, Vec<Term>),
    /// The built-in conditional.
    Ite(Box<Ite>),
    /// The distinguished `error` value of the given sort.
    Error(SortId),
}

/// A path from the root of a term to one of its subterms.
///
/// Each step selects an argument: for `App`, the argument index; for `Ite`,
/// `0` = condition, `1` = then-branch, `2` = else-branch. The empty
/// position denotes the term itself. Positions let rewrite traces report
/// *where* a rule fired.
pub type Position = Vec<u32>;

impl Term {
    /// Builds an `if-then-else` term.
    pub fn ite(cond: Term, then_branch: Term, else_branch: Term) -> Term {
        Term::Ite(Box::new(Ite {
            cond,
            then_branch,
            else_branch,
        }))
    }

    /// Builds a nullary application (a constant).
    pub fn constant(op: OpId) -> Term {
        Term::App(op, Vec::new())
    }

    /// Computes the sort of this term and checks it is well-sorted
    /// throughout: every application matches its operation's declared
    /// domain, every conditional has a `Bool` condition and branches of a
    /// common sort.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] or [`CoreError::SortMismatch`]
    /// describing the first violation found (leftmost-innermost).
    pub fn sort(&self, sig: &Signature) -> Result<SortId> {
        match self {
            Term::Var(v) => Ok(sig.var(*v).sort()),
            Term::Error(s) => Ok(*s),
            Term::App(op, args) => {
                let info = sig.op(*op);
                if info.arity() != args.len() {
                    return Err(CoreError::ArityMismatch {
                        op: info.name().into(),
                        expected: info.arity(),
                        found: args.len(),
                    });
                }
                for (i, (arg, &expected)) in args.iter().zip(info.args()).enumerate() {
                    let found = arg.sort(sig)?;
                    if found != expected {
                        return Err(CoreError::SortMismatch {
                            context: format!("argument {} of {}", i + 1, info.name()),
                            expected: sig.sort(expected).name().into(),
                            found: sig.sort(found).name().into(),
                        });
                    }
                }
                Ok(info.result())
            }
            Term::Ite(ite) => {
                let cond_sort = ite.cond.sort(sig)?;
                if cond_sort != sig.bool_sort() {
                    return Err(CoreError::SortMismatch {
                        context: "condition of if-then-else".into(),
                        expected: "Bool".into(),
                        found: sig.sort(cond_sort).name().into(),
                    });
                }
                let then_sort = ite.then_branch.sort(sig)?;
                let else_sort = ite.else_branch.sort(sig)?;
                if then_sort != else_sort {
                    return Err(CoreError::SortMismatch {
                        context: "else-branch of if-then-else".into(),
                        expected: sig.sort(then_sort).name().into(),
                        found: sig.sort(else_sort).name().into(),
                    });
                }
                Ok(then_sort)
            }
        }
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Error(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
            Term::Ite(ite) => {
                ite.cond.is_ground() && ite.then_branch.is_ground() && ite.else_branch.is_ground()
            }
        }
    }

    /// Whether the term is the distinguished `error` value.
    pub fn is_error(&self) -> bool {
        matches!(self, Term::Error(_))
    }

    /// Whether the term is built purely from constructor applications (and
    /// `error`) — i.e. is a canonical value of the algebra.
    pub fn is_constructor_term(&self, sig: &Signature) -> bool {
        match self {
            Term::Var(_) | Term::Ite(_) => false,
            Term::Error(_) => true,
            Term::App(op, args) => {
                sig.op(*op).is_constructor() && args.iter().all(|a| a.is_constructor_term(sig))
            }
        }
    }

    /// Collects the distinct variables of the term in first-occurrence order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Error(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::Ite(ite) => {
                ite.cond.collect_vars(out);
                ite.then_branch.collect_vars(out);
                ite.else_branch.collect_vars(out);
            }
        }
    }

    /// Number of nodes in the term.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_) | Term::Error(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            Term::Ite(ite) => 1 + ite.cond.size() + ite.then_branch.size() + ite.else_branch.size(),
        }
    }

    /// Height of the term (a constant has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Error(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
            Term::Ite(ite) => {
                1 + ite
                    .cond
                    .depth()
                    .max(ite.then_branch.depth())
                    .max(ite.else_branch.depth())
            }
        }
    }

    /// The immediate children of the term, in positional order.
    pub fn children(&self) -> Vec<&Term> {
        match self {
            Term::Var(_) | Term::Error(_) => Vec::new(),
            Term::App(_, args) => args.iter().collect(),
            Term::Ite(ite) => vec![&ite.cond, &ite.then_branch, &ite.else_branch],
        }
    }

    /// The subterm at `pos`, if the position is valid.
    pub fn at(&self, pos: &[u32]) -> Option<&Term> {
        let mut cur = self;
        for &step in pos {
            cur = match cur {
                Term::App(_, args) => args.get(step as usize)?,
                Term::Ite(ite) => match step {
                    0 => &ite.cond,
                    1 => &ite.then_branch,
                    2 => &ite.else_branch,
                    _ => return None,
                },
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Returns a copy of the term with the subterm at `pos` replaced by
    /// `replacement`, or `None` if the position is invalid.
    pub fn replace_at(&self, pos: &[u32], replacement: Term) -> Option<Term> {
        if pos.is_empty() {
            return Some(replacement);
        }
        let step = pos[0] as usize;
        let rest = &pos[1..];
        match self {
            Term::App(op, args) => {
                let child = args.get(step)?.replace_at(rest, replacement)?;
                let mut new_args = args.clone();
                new_args[step] = child;
                Some(Term::App(*op, new_args))
            }
            Term::Ite(ite) => {
                let mut new = (**ite).clone();
                match step {
                    0 => new.cond = ite.cond.replace_at(rest, replacement)?,
                    1 => new.then_branch = ite.then_branch.replace_at(rest, replacement)?,
                    2 => new.else_branch = ite.else_branch.replace_at(rest, replacement)?,
                    _ => return None,
                }
                Some(Term::Ite(Box::new(new)))
            }
            _ => None,
        }
    }

    /// Iterates over all (position, subterm) pairs in pre-order.
    pub fn subterms(&self) -> Vec<(Position, &Term)> {
        let mut out = Vec::new();
        self.collect_subterms(Vec::new(), &mut out);
        out
    }

    fn collect_subterms<'a>(&'a self, pos: Position, out: &mut Vec<(Position, &'a Term)>) {
        out.push((pos.clone(), self));
        for (i, child) in self.children().into_iter().enumerate() {
            let mut child_pos = pos.clone();
            child_pos.push(i as u32);
            child.collect_subterms(child_pos, out);
        }
    }

    /// Whether `self` contains `needle` as a (possibly improper) subterm.
    pub fn contains(&self, needle: &Term) -> bool {
        if self == needle {
            return true;
        }
        self.children().into_iter().any(|c| c.contains(needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig_with_queue() -> Signature {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_op("FRONT", vec![queue], item).unwrap();
        sig.add_op("IS_EMPTY?", vec![queue], sig.bool_sort())
            .unwrap();
        sig.add_var("q", queue).unwrap();
        sig.add_var("i", item).unwrap();
        sig
    }

    fn t(sig: &Signature, src_op: &str, args: Vec<Term>) -> Term {
        sig.apply(src_op, args).unwrap()
    }

    #[test]
    fn sorts_of_terms() {
        let sig = sig_with_queue();
        let queue = sig.find_sort("Queue").unwrap();
        let item = sig.find_sort("Item").unwrap();
        let new = t(&sig, "NEW", vec![]);
        assert_eq!(new.sort(&sig).unwrap(), queue);
        let front = t(&sig, "FRONT", vec![new.clone()]);
        assert_eq!(front.sort(&sig).unwrap(), item);
        assert_eq!(Term::Error(item).sort(&sig).unwrap(), item);
        let q = Term::Var(sig.find_var("q").unwrap());
        assert_eq!(q.sort(&sig).unwrap(), queue);
    }

    #[test]
    fn ite_sort_checking() {
        let sig = sig_with_queue();
        let new = t(&sig, "NEW", vec![]);
        let i = Term::Var(sig.find_var("i").unwrap());
        let cond = t(&sig, "IS_EMPTY?", vec![new.clone()]);
        let good = Term::ite(cond.clone(), i.clone(), Term::Error(i.sort(&sig).unwrap()));
        assert_eq!(good.sort(&sig).unwrap(), sig.find_sort("Item").unwrap());

        // Non-bool condition.
        let bad_cond = Term::ite(new.clone(), i.clone(), i.clone());
        assert!(matches!(
            bad_cond.sort(&sig),
            Err(CoreError::SortMismatch { .. })
        ));

        // Mismatched branches.
        let bad_branches = Term::ite(cond, i, new);
        assert!(matches!(
            bad_branches.sort(&sig),
            Err(CoreError::SortMismatch { .. })
        ));
    }

    #[test]
    fn ill_sorted_application_is_detected_deep() {
        let sig = sig_with_queue();
        // ADD(NEW, NEW) — second argument should be Item.
        let new = sig.find_op("NEW").unwrap();
        let add = sig.find_op("ADD").unwrap();
        let bad = Term::App(add, vec![Term::constant(new), Term::constant(new)]);
        let err = bad.sort(&sig).unwrap_err();
        assert!(matches!(err, CoreError::SortMismatch { .. }));
        // Wrong arity deep inside.
        let bad_arity = Term::App(add, vec![Term::constant(new)]);
        assert!(matches!(
            bad_arity.sort(&sig),
            Err(CoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn groundness_and_constructor_terms() {
        let sig = sig_with_queue();
        let q = Term::Var(sig.find_var("q").unwrap());
        let i = Term::Var(sig.find_var("i").unwrap());
        let new = t(&sig, "NEW", vec![]);
        assert!(new.is_ground());
        assert!(new.is_constructor_term(&sig));
        let add_var = t(&sig, "ADD", vec![q.clone(), i.clone()]);
        assert!(!add_var.is_ground());
        assert!(!add_var.is_constructor_term(&sig));
        let front = t(&sig, "FRONT", vec![new.clone()]);
        assert!(front.is_ground());
        assert!(!front.is_constructor_term(&sig));
        let item = sig.find_sort("Item").unwrap();
        assert!(Term::Error(item).is_constructor_term(&sig));
    }

    #[test]
    fn vars_in_first_occurrence_order_without_duplicates() {
        let sig = sig_with_queue();
        let q = sig.find_var("q").unwrap();
        let i = sig.find_var("i").unwrap();
        let term = t(
            &sig,
            "ADD",
            vec![
                t(&sig, "ADD", vec![Term::Var(q), Term::Var(i)]),
                Term::Var(i),
            ],
        );
        assert_eq!(term.vars(), vec![q, i]);
    }

    #[test]
    fn size_depth_children() {
        let sig = sig_with_queue();
        let new = t(&sig, "NEW", vec![]);
        assert_eq!(new.size(), 1);
        assert_eq!(new.depth(), 1);
        let i = Term::Var(sig.find_var("i").unwrap());
        let add = t(&sig, "ADD", vec![new.clone(), i.clone()]);
        assert_eq!(add.size(), 3);
        assert_eq!(add.depth(), 2);
        assert_eq!(add.children().len(), 2);
        let ite = Term::ite(sig.tt(), i.clone(), i);
        assert_eq!(ite.size(), 4);
        assert_eq!(ite.children().len(), 3);
    }

    #[test]
    fn positions_navigate_and_replace() {
        let sig = sig_with_queue();
        let new = t(&sig, "NEW", vec![]);
        let i = Term::Var(sig.find_var("i").unwrap());
        let add = t(&sig, "ADD", vec![new.clone(), i.clone()]);
        assert_eq!(add.at(&[]), Some(&add));
        assert_eq!(add.at(&[0]), Some(&new));
        assert_eq!(add.at(&[1]), Some(&i));
        assert_eq!(add.at(&[2]), None);
        assert_eq!(add.at(&[0, 0]), None);

        let q = Term::Var(sig.find_var("q").unwrap());
        let replaced = add.replace_at(&[0], q.clone()).unwrap();
        assert_eq!(replaced.at(&[0]), Some(&q));
        assert_eq!(replaced.at(&[1]), Some(&i));
        assert!(add.replace_at(&[5], q).is_none());
    }

    #[test]
    fn subterms_enumerates_preorder() {
        let sig = sig_with_queue();
        let new = t(&sig, "NEW", vec![]);
        let i = Term::Var(sig.find_var("i").unwrap());
        let add = t(&sig, "ADD", vec![new.clone(), i.clone()]);
        let subs = add.subterms();
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].0, Vec::<u32>::new());
        assert_eq!(subs[1], (vec![0], &new));
        assert_eq!(subs[2], (vec![1], &i));
        assert!(add.contains(&new));
        assert!(add.contains(&add));
        assert!(!new.contains(&add));
    }
}
