//! Complete algebraic specifications and their builder.

use crate::axiom::Axiom;
use crate::error::CoreError;
use crate::ids::{OpId, SortId, VarId};
use crate::signature::Signature;
use crate::term::Term;
use crate::Result;

/// A complete algebraic specification: a signature, a set of axioms, the
/// *sorts of interest* it defines, and its parameter sorts.
///
/// This is the paper's central object (§2): "An algebraic specification of
/// an abstract type consists of two pairs: a syntactic specification and a
/// set of relations." A single `Spec` may define several types at once
/// (e.g. the Symboltable representation level, which speaks of Stack,
/// Array and the primed operations together) — the paper's "adding another
/// level to the specification".
///
/// Parameter sorts (such as `Item` in Queue-of-Items) make the
/// specification "a type schema rather than a single type" (§3). For
/// executable checking, parameter sorts are typically instantiated with a
/// few constant constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    name: String,
    sig: Signature,
    axioms: Vec<Axiom>,
    tois: Vec<SortId>,
    params: Vec<SortId>,
}

impl Spec {
    /// The specification's name, e.g. `"Queue"` or `"Symboltable"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The syntactic specification.
    pub fn sig(&self) -> &Signature {
        &self.sig
    }

    /// All axioms, in declaration order.
    pub fn axioms(&self) -> &[Axiom] {
        &self.axioms
    }

    /// The axiom with the given label, if any.
    pub fn axiom_labelled(&self, label: &str) -> Option<&Axiom> {
        self.axioms.iter().find(|a| a.label() == label)
    }

    /// All axioms whose left-hand side is headed by `op`.
    pub fn axioms_for(&self, op: OpId) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(move |a| a.head_op() == Some(op))
    }

    /// The sorts of interest — the sorts this specification defines.
    pub fn tois(&self) -> &[SortId] {
        &self.tois
    }

    /// The parameter sorts — sorts the specification is generic over.
    pub fn params(&self) -> &[SortId] {
        &self.params
    }

    /// Whether `sort` is one of the sorts of interest.
    pub fn is_toi(&self, sort: SortId) -> bool {
        self.tois.contains(&sort)
    }

    /// Whether `sort` is a parameter sort.
    pub fn is_param(&self, sort: SortId) -> bool {
        self.params.contains(&sort)
    }

    /// The *derived* (non-constructor, non-builtin) operations, i.e. those
    /// whose meaning the axioms must pin down on every constructor case for
    /// the specification to be sufficiently complete.
    pub fn derived_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.sig.op_ids().filter(move |&op| {
            let info = self.sig.op(op);
            !info.is_constructor() && !info.is_builtin()
        })
    }

    /// Re-validates every axiom against the signature.
    ///
    /// Specifications produced by [`SpecBuilder::build`] are always valid;
    /// this is exposed for specs assembled by other front ends (e.g. the
    /// DSL lowering).
    ///
    /// # Errors
    ///
    /// Returns the first axiom or structural error found.
    pub fn validate(&self) -> Result<()> {
        for toi in &self.tois {
            if self.sig.sort(*toi).is_builtin() {
                return Err(CoreError::InvalidSpec {
                    reason: format!(
                        "built-in sort `{}` cannot be a sort of interest",
                        self.sig.sort(*toi).name()
                    ),
                });
            }
            if self.sig.constructors_of(*toi).next().is_none() {
                return Err(CoreError::InvalidSpec {
                    reason: format!(
                        "sort of interest `{}` has no constructors; values of the type \
                         cannot be generated",
                        self.sig.sort(*toi).name()
                    ),
                });
            }
        }
        for (toi, param) in self
            .tois
            .iter()
            .flat_map(|t| self.params.iter().map(move |p| (*t, *p)))
        {
            if toi == param {
                return Err(CoreError::InvalidSpec {
                    reason: format!(
                        "sort `{}` is both a sort of interest and a parameter",
                        self.sig.sort(toi).name()
                    ),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for ax in &self.axioms {
            ax.validate(&self.sig)?;
            if !seen.insert(ax.label().to_owned()) {
                return Err(CoreError::InvalidSpec {
                    reason: format!("duplicate axiom label `{}`", ax.label()),
                });
            }
        }
        Ok(())
    }

    /// Assembles a specification from parts, validating it.
    ///
    /// # Errors
    ///
    /// Returns any error [`Spec::validate`] would report.
    pub fn from_parts(
        name: impl Into<String>,
        sig: Signature,
        axioms: Vec<Axiom>,
        tois: Vec<SortId>,
        params: Vec<SortId>,
    ) -> Result<Spec> {
        let spec = Spec {
            name: name.into(),
            sig,
            axioms,
            tois,
            params,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Incremental builder for [`Spec`].
///
/// Declaration methods (`sort`, `op`, `ctor`, `var`, …) panic on duplicate
/// names — a duplicate is a bug in the program constructing the spec, not a
/// runtime condition. All *semantic* validation (sort checking of axioms,
/// generator existence, …) is deferred to [`SpecBuilder::build`], which
/// returns a `Result`.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    name: String,
    sig: Signature,
    axioms: Vec<Axiom>,
    tois: Vec<SortId>,
    params: Vec<SortId>,
}

impl SpecBuilder {
    /// Starts a specification with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SpecBuilder {
            name: name.into(),
            sig: Signature::new(),
            axioms: Vec::new(),
            tois: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Declares a sort of interest.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn sort(&mut self, name: &str) -> SortId {
        let id = self
            .sig
            .add_sort(name)
            .unwrap_or_else(|e| panic!("SpecBuilder::sort: {e}"));
        self.tois.push(id);
        id
    }

    /// Declares a parameter sort (e.g. `Item`).
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn param_sort(&mut self, name: &str) -> SortId {
        let id = self
            .sig
            .add_sort(name)
            .unwrap_or_else(|e| panic!("SpecBuilder::param_sort: {e}"));
        self.params.push(id);
        id
    }

    /// Declares an auxiliary sort that is neither a sort of interest nor a
    /// parameter (rarely needed; used by representation-level specs for
    /// "carrier" sorts whose constructors are supplied elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn aux_sort(&mut self, name: &str) -> SortId {
        self.sig
            .add_sort(name)
            .unwrap_or_else(|e| panic!("SpecBuilder::aux_sort: {e}"))
    }

    /// Declares a non-constructor operation.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn op(
        &mut self,
        name: &str,
        args: impl IntoIterator<Item = SortId>,
        result: SortId,
    ) -> OpId {
        self.sig
            .add_op(name, args.into_iter().collect(), result)
            .unwrap_or_else(|e| panic!("SpecBuilder::op: {e}"))
    }

    /// Declares a constructor operation.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn ctor(
        &mut self,
        name: &str,
        args: impl IntoIterator<Item = SortId>,
        result: SortId,
    ) -> OpId {
        self.sig
            .add_ctor(name, args.into_iter().collect(), result)
            .unwrap_or_else(|e| panic!("SpecBuilder::ctor: {e}"))
    }

    /// Declares a typed variable.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn var(&mut self, name: &str, sort: SortId) -> VarId {
        self.sig
            .add_var(name, sort)
            .unwrap_or_else(|e| panic!("SpecBuilder::var: {e}"))
    }

    /// Builds an application term. No checking happens here; ill-sorted
    /// terms are reported by [`SpecBuilder::build`].
    pub fn app(&self, op: OpId, args: impl IntoIterator<Item = Term>) -> Term {
        Term::App(op, args.into_iter().collect())
    }

    /// The term `true`.
    pub fn tt(&self) -> Term {
        self.sig.tt()
    }

    /// The term `false`.
    pub fn ff(&self) -> Term {
        self.sig.ff()
    }

    /// The built-in `Bool` sort.
    pub fn bool_sort(&self) -> SortId {
        self.sig.bool_sort()
    }

    /// Adds an axiom `lhs = rhs`.
    pub fn axiom(&mut self, label: impl Into<String>, lhs: Term, rhs: Term) -> &mut Self {
        self.axioms.push(Axiom::new(label, lhs, rhs));
        self
    }

    /// Read access to the signature under construction (for term building
    /// helpers such as [`Signature::apply`]).
    pub fn sig(&self) -> &Signature {
        &self.sig
    }

    /// Finalizes and validates the specification.
    ///
    /// # Errors
    ///
    /// Returns any error [`Spec::validate`] would report: ill-sorted or
    /// ill-formed axioms, duplicate labels, a sort of interest without
    /// constructors, etc.
    pub fn build(self) -> Result<Spec> {
        Spec::from_parts(self.name, self.sig, self.axioms, self.tois, self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_builder() -> SpecBuilder {
        let mut b = SpecBuilder::new("Queue");
        let queue = b.sort("Queue");
        let item = b.param_sort("Item");
        let new = b.ctor("NEW", [], queue);
        let add = b.ctor("ADD", [queue, item], queue);
        let front = b.op("FRONT", [queue], item);
        let is_empty = b.op("IS_EMPTY?", [queue], b.bool_sort());
        let q = b.var("q", queue);
        let i = b.var("i", item);
        let tt = b.tt();
        b.axiom("q1", b.app(is_empty, [b.app(new, [])]), tt);
        let lhs = b.app(front, [b.app(add, [Term::Var(q), Term::Var(i)])]);
        let rhs = Term::ite(
            b.app(is_empty, [Term::Var(q)]),
            Term::Var(i),
            b.app(front, [Term::Var(q)]),
        );
        b.axiom("q4", lhs, rhs);
        b
    }

    #[test]
    fn builds_and_validates_queue_fragment() {
        let spec = queue_builder().build().unwrap();
        assert_eq!(spec.name(), "Queue");
        assert_eq!(spec.axioms().len(), 2);
        assert_eq!(spec.tois().len(), 1);
        assert_eq!(spec.params().len(), 1);
        let queue = spec.sig().find_sort("Queue").unwrap();
        assert!(spec.is_toi(queue));
        assert!(!spec.is_param(queue));
        let item = spec.sig().find_sort("Item").unwrap();
        assert!(spec.is_param(item));
        assert!(spec.axiom_labelled("q1").is_some());
        assert!(spec.axiom_labelled("zzz").is_none());
    }

    #[test]
    fn derived_ops_excludes_constructors_and_builtins() {
        let spec = queue_builder().build().unwrap();
        let derived: Vec<_> = spec
            .derived_ops()
            .map(|op| spec.sig().op(op).name().to_owned())
            .collect();
        assert_eq!(derived, vec!["FRONT", "IS_EMPTY?"]);
    }

    #[test]
    fn axioms_for_groups_by_head() {
        let spec = queue_builder().build().unwrap();
        let front = spec.sig().find_op("FRONT").unwrap();
        let labels: Vec<_> = spec.axioms_for(front).map(|a| a.label()).collect();
        assert_eq!(labels, vec!["q4"]);
    }

    #[test]
    fn toi_without_constructors_is_rejected() {
        let mut b = SpecBuilder::new("Bad");
        let s = b.sort("S");
        b.op("F", [s], s);
        let err = b.build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec { .. }));
        assert!(err.to_string().contains("no constructors"));
    }

    #[test]
    fn duplicate_axiom_labels_are_rejected() {
        let mut b = SpecBuilder::new("Bad");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let f = b.op("F", [s], s);
        let v = b.var("x", s);
        b.axiom("a1", b.app(f, [Term::Var(v)]), Term::Var(v));
        b.axiom("a1", b.app(f, [b.app(c, [])]), b.app(c, []));
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("duplicate axiom label"));
    }

    #[test]
    fn ill_sorted_axiom_is_caught_at_build() {
        let mut b = SpecBuilder::new("Bad");
        let s = b.sort("S");
        let c = b.ctor("C", [], s);
        let f = b.op("F", [s], b.bool_sort());
        // F(C) = C : Bool vs S mismatch.
        b.axiom("a1", b.app(f, [b.app(c, [])]), b.app(c, []));
        assert!(matches!(b.build(), Err(CoreError::SortMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "SpecBuilder::sort")]
    fn duplicate_sort_panics() {
        let mut b = SpecBuilder::new("Bad");
        b.sort("S");
        b.sort("S");
    }

    #[test]
    fn overlapping_toi_and_param_is_rejected() {
        // Assemble by hand to bypass the builder's separate lists.
        let mut sig = Signature::new();
        let s = sig.add_sort("S").unwrap();
        sig.add_ctor("C", vec![], s).unwrap();
        let err = Spec::from_parts("Bad", sig, vec![], vec![s], vec![s]).unwrap_err();
        assert!(err.to_string().contains("both a sort of interest"));
    }

    #[test]
    fn builtin_toi_is_rejected() {
        let sig = Signature::new();
        let b = sig.bool_sort();
        let err = Spec::from_parts("Bad", sig, vec![], vec![b], vec![]).unwrap_err();
        assert!(err.to_string().contains("built-in"));
    }
}
