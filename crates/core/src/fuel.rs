//! Resource budgets for the engines built on this crate.
//!
//! The paper's algebra makes `error` a first-class value that every
//! operation must propagate; the same discipline applied to the *tools*
//! means no entry point may hang or die — it must terminate with a
//! verdict. A [`Fuel`] budget bounds the three resources a divergent
//! axiom set can otherwise consume without limit: rewrite steps, term
//! (recursion) depth, and wall-clock time. When a budget runs out the
//! engines report a [`FuelSpent`] receipt — how much was consumed and
//! which bound tripped — instead of spinning.
//!
//! Steps and depth are deterministic: the same input exhausts at exactly
//! the same point on every run and at every worker count, so reports
//! containing exhaustion verdicts stay byte-identical. A wall-clock
//! deadline is inherently timing-dependent and therefore **off by
//! default**; enabling it trades report determinism for a hard latency
//! bound.

use std::time::Duration;

/// The default step budget: generous for every workload in this
/// repository while still catching circular axiom sets quickly.
pub const DEFAULT_FUEL_STEPS: u64 = 1_000_000;

/// The default evaluation-depth bound.
///
/// Innermost evaluation recurses on the native stack, so an *unbounded*
/// depth turns a sufficiently deep ground term into a stack overflow —
/// an abort, not a verdict. The default cap converts that failure into a
/// deterministic [`ExhaustionCause::Depth`] receipt. 1024 is roughly 3×
/// the deepest term any workload in this repository builds (queue chains
/// of 128, symbol-table traces of 256) while staying far below the
/// native frame budget of a default 2 MiB worker-thread stack, debug
/// builds included. Callers that genuinely need deeper evaluation can
/// opt out with [`Fuel::without_max_depth`] — and take responsibility
/// for running on a stack that fits.
pub const DEFAULT_MAX_DEPTH: usize = 1024;

/// A resource budget for one normalization (or one checker work item).
///
/// ```
/// use adt_core::Fuel;
/// let budget = Fuel::steps(10_000).with_max_depth(512);
/// assert_eq!(budget.steps, 10_000);
/// assert_eq!(budget.max_depth, Some(512));
/// assert_eq!(budget.deadline, None); // deadlines are opt-in
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    /// Maximum number of rewrite steps (rule applications, built-in `if`
    /// reductions included).
    pub steps: u64,
    /// Maximum evaluation (term recursion) depth, if bounded.
    pub max_depth: Option<usize>,
    /// Wall-clock budget, if bounded. Non-deterministic: two runs may
    /// exhaust at different points. Off by default.
    pub deadline: Option<Duration>,
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel {
            steps: DEFAULT_FUEL_STEPS,
            max_depth: Some(DEFAULT_MAX_DEPTH),
            deadline: None,
        }
    }
}

impl Fuel {
    /// A budget of `steps` rewrite steps with the default depth bound and
    /// no deadline.
    pub fn steps(steps: u64) -> Self {
        Fuel {
            steps,
            ..Fuel::default()
        }
    }

    /// Adds a depth bound.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Removes the depth bound entirely.
    ///
    /// Evaluation recurses on the native stack, so an unbounded depth
    /// makes stack overflow (a process abort) reachable again for deep
    /// enough inputs; only use this on threads with stacks sized for the
    /// terms at hand.
    #[must_use]
    pub fn without_max_depth(mut self) -> Self {
        self.max_depth = None;
        self
    }

    /// Adds a wall-clock deadline (non-deterministic; see module docs).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Which bound of a [`Fuel`] budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionCause {
    /// The step budget was fully consumed.
    Steps,
    /// The depth bound was exceeded.
    Depth,
    /// The wall-clock deadline passed.
    Deadline,
}

impl std::fmt::Display for ExhaustionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustionCause::Steps => write!(f, "step budget"),
            ExhaustionCause::Depth => write!(f, "depth bound"),
            ExhaustionCause::Deadline => write!(f, "deadline"),
        }
    }
}

/// A receipt for an exhausted budget: what was spent and which bound
/// tripped. Deliberately contains no timing data (beyond the cause), so
/// it can appear in reports that must be byte-identical across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuelSpent {
    /// Rewrite steps performed before the budget ran out. When
    /// `cause == Steps`, this equals the configured step budget exactly.
    pub steps: u64,
    /// Deepest evaluation depth reached.
    pub depth: usize,
    /// The bound that tripped.
    pub cause: ExhaustionCause,
}

impl std::fmt::Display for FuelSpent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} exhausted after {} step(s), depth {}",
            self.cause, self.steps, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_bound_steps_and_depth_but_not_time() {
        let f = Fuel::default();
        assert_eq!(f.steps, DEFAULT_FUEL_STEPS);
        assert_eq!(f.max_depth, Some(DEFAULT_MAX_DEPTH));
        assert_eq!(f.deadline, None);
    }

    #[test]
    fn depth_bound_can_be_lifted() {
        let f = Fuel::default().without_max_depth();
        assert_eq!(f.max_depth, None);
        assert_eq!(f.steps, DEFAULT_FUEL_STEPS);
    }

    #[test]
    fn builders_compose() {
        let f = Fuel::steps(7)
            .with_max_depth(3)
            .with_deadline(Duration::from_millis(100));
        assert_eq!(f.steps, 7);
        assert_eq!(f.max_depth, Some(3));
        assert_eq!(f.deadline, Some(Duration::from_millis(100)));
    }

    #[test]
    fn spent_display_names_the_cause() {
        let s = FuelSpent {
            steps: 100,
            depth: 4,
            cause: ExhaustionCause::Steps,
        };
        let text = s.to_string();
        assert!(text.contains("step budget"), "{text}");
        assert!(text.contains("100"), "{text}");
    }
}
