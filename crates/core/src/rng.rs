//! A small deterministic pseudo-random number generator.
//!
//! The checking and verification crates sample random ground terms
//! (consistency probes, deep axiom instances). Those samples must be
//! *reproducible* — a failing probe is only useful if the same seed
//! replays it — and the workspace builds with no external dependencies,
//! so the generator lives here rather than coming from a crates.io RNG.
//!
//! The algorithm is splitmix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014): one 64-bit state word,
//! full period, and statistically strong enough for workload sampling.

/// A deterministic splitmix64 stream.
///
/// ```
/// use adt_core::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let pick = a.below(10);
/// assert!(pick < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed index below `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (there is no valid index to return).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "DetRng::below(0) has no valid result");
        // The modulo bias is ≤ n/2^64 — irrelevant at workload sizes.
        (self.next_u64() % n as u64) as usize
    }

    /// A uniformly distributed boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Forks an independent generator whose stream is decorrelated from
    /// the parent's (used to give each parallel worker its own stream).
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = DetRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let k = rng.below(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    #[should_panic(expected = "no valid result")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut parent = DetRng::new(9);
        let mut child = parent.fork();
        let collisions = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(collisions, 0);
    }
}
