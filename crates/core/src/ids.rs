//! Interned identifiers for sorts, operators and variables.
//!
//! All three are small copyable indices into tables owned by a
//! [`Signature`](crate::Signature). Newtypes keep them statically distinct
//! (you cannot pass an operator where a sort is expected) at zero cost.

use std::fmt;

use crate::error::CoreError;

/// Converts a table length into the next id index, failing loudly when the
/// table has outgrown the 32-bit id space.
///
/// Ids are `u32` by design (they are copied pervasively and keyed into
/// dense tables); a table of more than `u32::MAX` entries cannot be
/// represented and silently truncating the index would *alias* two
/// distinct entries — the worst possible failure mode for an interning
/// scheme. `kind` names the table for the error message (`"sort"`,
/// `"operation"`, `"variable"`, `"term"`).
///
/// # Errors
///
/// Returns [`CoreError::CapacityExceeded`] when `len` does not fit in a
/// `u32`.
pub(crate) fn checked_index(len: usize, kind: &'static str) -> Result<u32, CoreError> {
    u32::try_from(len).map_err(|_| CoreError::CapacityExceeded {
        kind,
        limit: u64::from(u32::MAX),
    })
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index of this identifier inside its signature table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a raw table index.
            ///
            /// Only meaningful for indices previously obtained from the same
            /// [`Signature`](crate::Signature); using a stale or foreign
            /// index yields lookup panics, never memory unsafety.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in the 32-bit id space —
            /// truncating would alias two distinct identifiers.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds the u32 id space"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a sort (a carrier set of the heterogeneous algebra),
    /// e.g. `Queue`, `Item`, or the built-in `Bool`.
    SortId,
    "s"
);

id_type!(
    /// Identifier of an operation of the algebra, e.g. `NEW`, `ADD`,
    /// `FRONT`, or the built-in `true`.
    OpId,
    "f"
);

id_type!(
    /// Identifier of a typed free variable usable in axioms, e.g. the `q`
    /// and `i` of `FRONT(ADD(q, i))`.
    VarId,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let s = SortId::from_index(7);
        assert_eq!(s.index(), 7);
        let f = OpId::from_index(0);
        assert_eq!(f.index(), 0);
        let v = VarId::from_index(41);
        assert_eq!(v.index(), 41);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SortId::from_index(1));
        set.insert(SortId::from_index(1));
        set.insert(SortId::from_index(2));
        assert_eq!(set.len(), 2);
        assert!(SortId::from_index(1) < SortId::from_index(2));
    }

    #[test]
    fn checked_index_accepts_the_full_u32_range() {
        assert_eq!(checked_index(0, "sort").unwrap(), 0);
        assert_eq!(checked_index(41, "sort").unwrap(), 41);
        assert_eq!(
            checked_index(u32::MAX as usize, "sort").unwrap(),
            u32::MAX
        );
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn checked_index_rejects_oversized_tables() {
        let err = checked_index(u32::MAX as usize + 1, "operation").unwrap_err();
        match err {
            CoreError::CapacityExceeded { kind, limit } => {
                assert_eq!(kind, "operation");
                assert_eq!(limit, u64::from(u32::MAX));
            }
            other => panic!("expected CapacityExceeded, got {other:?}"),
        }
        let rendered = checked_index(usize::MAX, "term").unwrap_err().to_string();
        assert!(rendered.contains("term table is full"), "{rendered}");
    }

    #[test]
    fn debug_is_nonempty_and_tagged() {
        assert_eq!(format!("{:?}", SortId::from_index(3)), "s3");
        assert_eq!(format!("{:?}", OpId::from_index(3)), "f3");
        assert_eq!(format!("{:?}", VarId::from_index(3)), "v3");
    }
}
