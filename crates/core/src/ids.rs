//! Interned identifiers for sorts, operators and variables.
//!
//! All three are small copyable indices into tables owned by a
//! [`Signature`](crate::Signature). Newtypes keep them statically distinct
//! (you cannot pass an operator where a sort is expected) at zero cost.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index of this identifier inside its signature table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a raw table index.
            ///
            /// Only meaningful for indices previously obtained from the same
            /// [`Signature`](crate::Signature); using a stale or foreign
            /// index yields lookup panics, never memory unsafety.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a sort (a carrier set of the heterogeneous algebra),
    /// e.g. `Queue`, `Item`, or the built-in `Bool`.
    SortId,
    "s"
);

id_type!(
    /// Identifier of an operation of the algebra, e.g. `NEW`, `ADD`,
    /// `FRONT`, or the built-in `true`.
    OpId,
    "f"
);

id_type!(
    /// Identifier of a typed free variable usable in axioms, e.g. the `q`
    /// and `i` of `FRONT(ADD(q, i))`.
    VarId,
    "v"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_index() {
        let s = SortId::from_index(7);
        assert_eq!(s.index(), 7);
        let f = OpId::from_index(0);
        assert_eq!(f.index(), 0);
        let v = VarId::from_index(41);
        assert_eq!(v.index(), 41);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SortId::from_index(1));
        set.insert(SortId::from_index(1));
        set.insert(SortId::from_index(2));
        assert_eq!(set.len(), 2);
        assert!(SortId::from_index(1) < SortId::from_index(2));
    }

    #[test]
    fn debug_is_nonempty_and_tagged() {
        assert_eq!(format!("{:?}", SortId::from_index(3)), "s3");
        assert_eq!(format!("{:?}", OpId::from_index(3)), "f3");
        assert_eq!(format!("{:?}", VarId::from_index(3)), "v3");
    }
}
