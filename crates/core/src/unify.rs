//! Syntactic unification (two-way), used for critical-pair computation.
//!
//! Unlike [matching](crate::match_pattern), unification may instantiate
//! variables of *both* terms. The result is a most general unifier (mgu)
//! in triangular-solved form with an occurs check, so the returned
//! substitution is idempotent and finite.

use crate::subst::Subst;
use crate::term::Term;

/// A most general unifier of two terms.
///
/// Applying [`Unifier::subst`] to either input yields the same term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unifier {
    /// The unifying substitution.
    pub subst: Subst,
}

/// Computes the most general unifier of `a` and `b`, if any.
///
/// Performs the occurs check, so cyclic "solutions" like `q = ADD(q, i)`
/// are rejected rather than looping.
///
/// ```
/// use adt_core::{unify, Signature, Term};
///
/// let mut sig = Signature::new();
/// let q = sig.add_sort("Queue").unwrap();
/// let i = sig.add_sort("Item").unwrap();
/// let add = sig.add_ctor("ADD", vec![q, i], q).unwrap();
/// let new = sig.add_ctor("NEW", vec![], q).unwrap();
/// let a = sig.add_ctor("A", vec![], i).unwrap();
/// let qv = sig.add_var("q", q).unwrap();
/// let iv = sig.add_var("i", i).unwrap();
///
/// let lhs = Term::App(add, vec![Term::Var(qv), Term::constant(a)]);
/// let rhs = Term::App(add, vec![Term::constant(new), Term::Var(iv)]);
/// let u = unify(&lhs, &rhs).expect("unifiable");
/// assert_eq!(u.subst.apply(&lhs), u.subst.apply(&rhs));
/// ```
pub fn unify(a: &Term, b: &Term) -> Option<Unifier> {
    let mut subst = Subst::new();
    if unify_into(a, b, &mut subst) {
        Some(Unifier { subst })
    } else {
        None
    }
}

fn resolve(term: &Term, subst: &Subst) -> Term {
    // Walk variable chains until a non-variable or unbound variable.
    let mut cur = term.clone();
    loop {
        match &cur {
            Term::Var(v) => match subst.get(*v) {
                Some(t) => cur = t.clone(),
                None => return cur,
            },
            _ => return cur,
        }
    }
}

fn occurs(var: crate::ids::VarId, term: &Term, subst: &Subst) -> bool {
    match term {
        Term::Var(v) => {
            if *v == var {
                return true;
            }
            match subst.get(*v) {
                Some(t) => occurs(var, &t.clone(), subst),
                None => false,
            }
        }
        Term::Error(_) => false,
        Term::App(_, args) => args.iter().any(|a| occurs(var, a, subst)),
        Term::Ite(ite) => {
            occurs(var, &ite.cond, subst)
                || occurs(var, &ite.then_branch, subst)
                || occurs(var, &ite.else_branch, subst)
        }
    }
}

fn unify_into(a: &Term, b: &Term, subst: &mut Subst) -> bool {
    let a = resolve(a, subst);
    let b = resolve(b, subst);
    match (&a, &b) {
        (Term::Var(v1), Term::Var(v2)) if v1 == v2 => true,
        (Term::Var(v), other) | (other, Term::Var(v)) => {
            if occurs(*v, other, subst) {
                false
            } else {
                subst.bind(*v, other.clone());
                true
            }
        }
        (Term::Error(s1), Term::Error(s2)) => s1 == s2,
        (Term::App(op1, args1), Term::App(op2, args2)) => {
            op1 == op2
                && args1.len() == args2.len()
                && args1
                    .iter()
                    .zip(args2)
                    .all(|(x, y)| unify_into(x, y, subst))
        }
        (Term::Ite(x), Term::Ite(y)) => {
            unify_into(&x.cond, &y.cond, subst)
                && unify_into(&x.then_branch, &y.then_branch, subst)
                && unify_into(&x.else_branch, &y.else_branch, subst)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::signature::Signature;

    struct Fixture {
        sig: Signature,
        q: VarId,
        q1: VarId,
        i: VarId,
        i1: VarId,
    }

    fn fixture() -> Fixture {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_ctor("A", vec![], item).unwrap();
        sig.add_ctor("B", vec![], item).unwrap();
        let q = sig.add_var("q", queue).unwrap();
        let q1 = sig.add_var("q1", queue).unwrap();
        let i = sig.add_var("i", item).unwrap();
        let i1 = sig.add_var("i1", item).unwrap();
        Fixture { sig, q, q1, i, i1 }
    }

    #[test]
    fn unifies_both_directions() {
        let f = fixture();
        let new = f.sig.apply("NEW", vec![]).unwrap();
        let a = f.sig.apply("A", vec![]).unwrap();
        let lhs = f.sig.apply("ADD", vec![Term::Var(f.q), a.clone()]).unwrap();
        let rhs = f
            .sig
            .apply("ADD", vec![new.clone(), Term::Var(f.i)])
            .unwrap();
        let u = unify(&lhs, &rhs).unwrap();
        assert_eq!(u.subst.apply(&lhs), u.subst.apply(&rhs));
        assert_eq!(u.subst.get(f.q), Some(&new));
        assert_eq!(u.subst.get(f.i), Some(&a));
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        let f = fixture();
        // q =? ADD(q, i) must fail.
        let add = f
            .sig
            .apply("ADD", vec![Term::Var(f.q), Term::Var(f.i)])
            .unwrap();
        assert!(unify(&Term::Var(f.q), &add).is_none());
        assert!(unify(&add, &Term::Var(f.q)).is_none());
    }

    #[test]
    fn variable_to_variable_unification() {
        let f = fixture();
        let u = unify(&Term::Var(f.q), &Term::Var(f.q1)).unwrap();
        assert_eq!(
            u.subst.apply(&Term::Var(f.q)),
            u.subst.apply(&Term::Var(f.q1))
        );
        // Self-unification is the identity.
        let u = unify(&Term::Var(f.q), &Term::Var(f.q)).unwrap();
        assert!(u.subst.is_empty());
    }

    #[test]
    fn clash_fails() {
        let f = fixture();
        let a = f.sig.apply("A", vec![]).unwrap();
        let b = f.sig.apply("B", vec![]).unwrap();
        assert!(unify(&a, &b).is_none());
        let new = f.sig.apply("NEW", vec![]).unwrap();
        let add = f.sig.apply("ADD", vec![new.clone(), a.clone()]).unwrap();
        assert!(unify(&new, &add).is_none());
    }

    #[test]
    fn chained_variables_resolve() {
        let f = fixture();
        let a = f.sig.apply("A", vec![]).unwrap();
        // Unify ADD(q, i) with ADD(q1, i1), then q1 with NEW via a second pair:
        let lhs = f
            .sig
            .apply("ADD", vec![Term::Var(f.q), Term::Var(f.i)])
            .unwrap();
        let rhs = f
            .sig
            .apply("ADD", vec![Term::Var(f.q1), Term::Var(f.i1)])
            .unwrap();
        let u = unify(&lhs, &rhs).unwrap();
        let lhs2 = u.subst.apply(&lhs);
        let rhs2 = u.subst.apply(&rhs);
        assert_eq!(lhs2, rhs2);
        // Now a ground instance of the common term still unifies with it.
        let new = f.sig.apply("NEW", vec![]).unwrap();
        let ground = f.sig.apply("ADD", vec![new, a]).unwrap();
        let u2 = unify(&lhs2, &ground).unwrap();
        assert_eq!(u2.subst.apply(&lhs2), ground);
    }

    #[test]
    fn unifier_substitution_is_idempotent_on_result() {
        let f = fixture();
        let new = f.sig.apply("NEW", vec![]).unwrap();
        let lhs = f
            .sig
            .apply("ADD", vec![Term::Var(f.q), Term::Var(f.i)])
            .unwrap();
        let rhs = f.sig.apply("ADD", vec![new, Term::Var(f.i1)]).unwrap();
        let u = unify(&lhs, &rhs).unwrap();
        let once = u.subst.apply(&lhs);
        let twice = u.subst.apply(&once);
        assert_eq!(once, twice);
    }
}
