//! Cooperative supervision: wall-clock deadlines and cancellation.
//!
//! Fuel (see [`crate::fuel`]) bounds *work*; supervision bounds *time
//! and intent*. A [`Deadline`] is a monotonic wall-clock budget shared
//! by every work item of a run, and a [`CancelToken`] is a cheap,
//! clonable flag an outside party (a signal handler, a batch driver, a
//! test harness) can trip to stop a run mid-flight. Both are folded
//! into a [`Supervisor`], which the rewrite engine polls at the same
//! cadence as its deadline check — roughly every thousand rewrite
//! steps — so a diverging normalization notices within microseconds
//! that its run is over.
//!
//! Supervision is *cooperative*: nothing is killed. An interrupted
//! normalization returns an [`Interrupt`] outcome that the checking
//! layers classify as UNDETERMINED — the analysis was stopped, the
//! specification was not proved wrong — and, unlike fuel exhaustion,
//! an interrupt is never retried: the supervisor said stop.
//!
//! Wall-clock deadlines are inherently non-deterministic (where the
//! clock expires depends on machine load), which is why they are
//! opt-in and why checkpointed phases are only ever recorded when they
//! ran to completion *uninterrupted* — everything a resume reuses is
//! byte-deterministic.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic wall-clock budget: `start + budget` is the instant the
/// run must wind down. Copyable so every worker carries the same
/// deadline without synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// Whether the budget has been spent.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.budget
    }

    /// Time left before expiry (zero once expired).
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.start.elapsed())
    }

    /// The total wall-clock budget this deadline was created with.
    #[must_use]
    pub fn budget(&self) -> Duration {
        self.budget
    }
}

/// How a poll-counting token trips (see [`CancelToken::after_polls`]).
#[derive(Debug)]
struct Trip {
    polls: AtomicU64,
    limit: u64,
}

/// A clonable cancellation flag. All clones observe the same flag;
/// tripping any of them stops every supervised run holding one.
///
/// The deterministic variant [`CancelToken::after_polls`] trips itself
/// after a fixed number of [`CancelToken::is_cancelled`] polls — the
/// interruption stress tests use it to fire cancellation at seeded
/// points mid-run without depending on wall-clock timing.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    trip: Option<Arc<Trip>>,
}

impl CancelToken {
    /// A fresh, untripped token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips itself on the `limit`-th poll. With `--jobs
    /// 1` the poll sequence is deterministic, so this cancels at a
    /// reproducible point mid-run.
    #[must_use]
    pub fn after_polls(limit: u64) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            trip: Some(Arc::new(Trip {
                polls: AtomicU64::new(0),
                limit,
            })),
        }
    }

    /// Trips the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been tripped (counts as one poll for
    /// [`CancelToken::after_polls`] tokens).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(trip) = &self.trip {
            if trip.polls.fetch_add(1, Ordering::AcqRel) + 1 >= trip.limit {
                self.flag.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// Why a supervised run was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// A [`CancelToken`] was tripped.
    Cancelled,
    /// The run's [`Deadline`] expired.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => f.write_str("cancelled"),
            Interrupt::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

/// A deadline and/or cancel token bundled for polling. The default
/// supervisor is inert: [`Supervisor::interrupted`] never fires and
/// the engine skips the poll entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Supervisor {
    deadline: Option<Deadline>,
    cancel: Option<CancelToken>,
}

impl Supervisor {
    /// The inert supervisor (no deadline, no cancellation).
    #[must_use]
    pub fn none() -> Self {
        Supervisor::default()
    }

    /// Adds a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The deadline, if one is set.
    #[must_use]
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// Whether polling can ever fire — lets hot loops skip the
    /// [`Supervisor::interrupted`] call when nothing is supervised.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Polls both signals: cancellation wins over the deadline, so a
    /// run that is both cancelled and past its deadline reports the
    /// explicit stop.
    #[must_use]
    pub fn interrupted(&self) -> Option<Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_supervisor_never_fires() {
        let sup = Supervisor::none();
        assert!(!sup.is_active());
        assert_eq!(sup.interrupted(), None);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        let sup = Supervisor::none().with_cancel(clone);
        assert_eq!(sup.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn poll_counting_token_trips_at_its_limit() {
        let token = CancelToken::after_polls(3);
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(token.is_cancelled());
        // …and stays tripped.
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_fires_the_supervisor() {
        let sup = Supervisor::none().with_deadline(Deadline::after(Duration::ZERO));
        assert!(sup.is_active());
        assert_eq!(sup.interrupted(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let deadline = Deadline::after(Duration::from_secs(3600));
        assert!(!deadline.expired());
        assert!(deadline.remaining() > Duration::from_secs(3000));
        let sup = Supervisor::none().with_deadline(deadline);
        assert_eq!(sup.interrupted(), None);
    }

    #[test]
    fn cancellation_outranks_the_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let sup = Supervisor::none()
            .with_deadline(Deadline::after(Duration::ZERO))
            .with_cancel(token);
        assert_eq!(sup.interrupted(), Some(Interrupt::Cancelled));
    }
}
