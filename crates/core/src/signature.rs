//! Signatures: the *syntactic specification* of an abstract data type.
//!
//! A [`Signature`] owns the interned tables of sorts, operations and typed
//! variables. It corresponds exactly to what the paper calls the syntactic
//! specification: "the names, domains, and ranges of the operations
//! associated with the type" (§2), extended with the built-in sort `Bool`
//! (carrying `true` and `false`) that the paper's axioms use freely.

use std::collections::HashMap;

use crate::error::CoreError;
use crate::ids::{OpId, SortId, VarId};
use crate::term::Term;
use crate::Result;

/// Metadata for one sort (one carrier of the heterogeneous algebra).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortInfo {
    name: String,
    builtin: bool,
}

impl SortInfo {
    /// The sort's name, e.g. `"Queue"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this sort is built in (currently only `Bool`).
    pub fn is_builtin(&self) -> bool {
        self.builtin
    }
}

/// Metadata for one operation: its name, domain, range, and whether it is a
/// *constructor* — one of the operations in terms of which every value of
/// the type can be generated (e.g. `NEW` and `ADD` for Queue, but not
/// `REMOVE`, even though `REMOVE` also ranges over Queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    name: String,
    args: Vec<SortId>,
    result: SortId,
    constructor: bool,
    builtin: bool,
}

impl OpInfo {
    /// The operation's name, e.g. `"ADD"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorts of the operation's arguments (its domain), in order.
    pub fn args(&self) -> &[SortId] {
        &self.args
    }

    /// The operation's arity (number of arguments).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The operation's result sort (its range).
    pub fn result(&self) -> SortId {
        self.result
    }

    /// Whether the operation is designated a constructor of its result sort.
    pub fn is_constructor(&self) -> bool {
        self.constructor
    }

    /// Whether the operation is built in (`true` / `false`).
    pub fn is_builtin(&self) -> bool {
        self.builtin
    }
}

/// Metadata for one typed free variable, usable in axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    name: String,
    sort: SortId,
}

impl VarInfo {
    /// The variable's name, e.g. `"q"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's sort.
    pub fn sort(&self) -> SortId {
        self.sort
    }
}

/// The syntactic specification of one or more abstract types: interned
/// sorts, operations and variables, plus the built-in booleans.
///
/// A fresh signature always contains the sort `Bool` with nullary
/// constructors `true` and `false`; the paper's axioms rely on them (and on
/// `if-then-else`, which is a term former, see [`Term::Ite`]).
///
/// ```
/// use adt_core::Signature;
///
/// let mut sig = Signature::new();
/// let queue = sig.add_sort("Queue").unwrap();
/// let item = sig.add_sort("Item").unwrap();
/// let add = sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
/// assert_eq!(sig.op(add).name(), "ADD");
/// assert_eq!(sig.op(add).arity(), 2);
/// assert!(sig.op(sig.true_op()).is_builtin());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    sorts: Vec<SortInfo>,
    sort_by_name: HashMap<String, SortId>,
    ops: Vec<OpInfo>,
    op_by_name: HashMap<String, OpId>,
    vars: Vec<VarInfo>,
    var_by_name: HashMap<String, VarId>,
    bool_sort: SortId,
    true_op: OpId,
    false_op: OpId,
}

impl Default for Signature {
    fn default() -> Self {
        Self::new()
    }
}

impl Signature {
    /// Creates a signature containing only the built-ins: sort `Bool` with
    /// constructors `true` and `false`.
    pub fn new() -> Self {
        let mut sig = Signature {
            sorts: Vec::new(),
            sort_by_name: HashMap::new(),
            ops: Vec::new(),
            op_by_name: HashMap::new(),
            vars: Vec::new(),
            var_by_name: HashMap::new(),
            bool_sort: SortId(0),
            true_op: OpId(0),
            false_op: OpId(1),
        };
        let bool_sort = sig
            .add_sort_impl("Bool", true)
            .expect("fresh signature cannot contain Bool");
        sig.bool_sort = bool_sort;
        sig.true_op = sig
            .add_op_impl("true", Vec::new(), bool_sort, true, true)
            .expect("fresh signature cannot contain true");
        sig.false_op = sig
            .add_op_impl("false", Vec::new(), bool_sort, true, true)
            .expect("fresh signature cannot contain false");
        sig
    }

    fn add_sort_impl(&mut self, name: &str, builtin: bool) -> Result<SortId> {
        if self.sort_by_name.contains_key(name) {
            return Err(CoreError::DuplicateSort { name: name.into() });
        }
        let id = SortId(crate::ids::checked_index(self.sorts.len(), "sort")?);
        self.sorts.push(SortInfo {
            name: name.into(),
            builtin,
        });
        self.sort_by_name.insert(name.into(), id);
        Ok(id)
    }

    fn add_op_impl(
        &mut self,
        name: &str,
        args: Vec<SortId>,
        result: SortId,
        constructor: bool,
        builtin: bool,
    ) -> Result<OpId> {
        if self.op_by_name.contains_key(name) {
            return Err(CoreError::DuplicateOp { name: name.into() });
        }
        let id = OpId(crate::ids::checked_index(self.ops.len(), "operation")?);
        self.ops.push(OpInfo {
            name: name.into(),
            args,
            result,
            constructor,
            builtin,
        });
        self.op_by_name.insert(name.into(), id);
        Ok(id)
    }

    /// Declares a new sort.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSort`] if the name is already taken
    /// (including by the built-in `Bool`).
    pub fn add_sort(&mut self, name: &str) -> Result<SortId> {
        self.add_sort_impl(name, false)
    }

    /// Declares a new non-constructor operation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateOp`] if the name is already taken.
    pub fn add_op(&mut self, name: &str, args: Vec<SortId>, result: SortId) -> Result<OpId> {
        self.add_op_impl(name, args, result, false, false)
    }

    /// Declares a new constructor operation (one of the generators of its
    /// result sort).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateOp`] if the name is already taken.
    pub fn add_ctor(&mut self, name: &str, args: Vec<SortId>, result: SortId) -> Result<OpId> {
        self.add_op_impl(name, args, result, true, false)
    }

    /// Declares a new typed free variable for use in axioms.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateVar`] if the name is already taken.
    pub fn add_var(&mut self, name: &str, sort: SortId) -> Result<VarId> {
        if self.var_by_name.contains_key(name) {
            return Err(CoreError::DuplicateVar { name: name.into() });
        }
        let id = VarId(crate::ids::checked_index(self.vars.len(), "variable")?);
        self.vars.push(VarInfo {
            name: name.into(),
            sort,
        });
        self.var_by_name.insert(name.into(), id);
        Ok(id)
    }

    /// Looks up sort metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this signature.
    pub fn sort(&self, id: SortId) -> &SortInfo {
        &self.sorts[id.index()]
    }

    /// Looks up operation metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this signature.
    pub fn op(&self, id: OpId) -> &OpInfo {
        &self.ops[id.index()]
    }

    /// Looks up variable metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this signature.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Fallible operation lookup, for engine code that must stay total
    /// even when handed a term from a different specification.
    pub fn try_op(&self, id: OpId) -> Result<&OpInfo, crate::EngineError> {
        self.ops
            .get(id.index())
            .ok_or(crate::EngineError::DanglingId {
                kind: "operation",
                index: id.index(),
            })
    }

    /// Resolves a sort by name.
    pub fn find_sort(&self, name: &str) -> Option<SortId> {
        self.sort_by_name.get(name).copied()
    }

    /// Resolves an operation by name.
    pub fn find_op(&self, name: &str) -> Option<OpId> {
        self.op_by_name.get(name).copied()
    }

    /// Resolves a variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_by_name.get(name).copied()
    }

    /// Resolves a sort by name, or produces a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unknown`] if no such sort exists.
    pub fn sort_named(&self, name: &str) -> Result<SortId> {
        self.find_sort(name).ok_or_else(|| CoreError::Unknown {
            kind: "sort",
            name: name.into(),
        })
    }

    /// Resolves an operation by name, or produces a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unknown`] if no such operation exists.
    pub fn op_named(&self, name: &str) -> Result<OpId> {
        self.find_op(name).ok_or_else(|| CoreError::Unknown {
            kind: "operation",
            name: name.into(),
        })
    }

    /// Resolves a variable by name, or produces a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unknown`] if no such variable exists.
    pub fn var_named(&self, name: &str) -> Result<VarId> {
        self.find_var(name).ok_or_else(|| CoreError::Unknown {
            kind: "variable",
            name: name.into(),
        })
    }

    /// Iterates over all sort ids in declaration order.
    pub fn sort_ids(&self) -> impl Iterator<Item = SortId> + '_ {
        (0..self.sorts.len()).map(SortId::from_index)
    }

    /// Iterates over all operation ids in declaration order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId::from_index)
    }

    /// Iterates over all variable ids in declaration order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId::from_index)
    }

    /// All operations whose range is `sort`.
    pub fn ops_with_result(&self, sort: SortId) -> impl Iterator<Item = OpId> + '_ {
        self.op_ids()
            .filter(move |&id| self.op(id).result() == sort)
    }

    /// All designated constructors of `sort`.
    pub fn constructors_of(&self, sort: SortId) -> impl Iterator<Item = OpId> + '_ {
        self.ops_with_result(sort)
            .filter(move |&id| self.op(id).is_constructor())
    }

    /// The built-in `Bool` sort.
    pub fn bool_sort(&self) -> SortId {
        self.bool_sort
    }

    /// The built-in nullary operation `true`.
    pub fn true_op(&self) -> OpId {
        self.true_op
    }

    /// The built-in nullary operation `false`.
    pub fn false_op(&self) -> OpId {
        self.false_op
    }

    /// The term `true`.
    pub fn tt(&self) -> Term {
        Term::App(self.true_op, Vec::new())
    }

    /// The term `false`.
    pub fn ff(&self) -> Term {
        Term::App(self.false_op, Vec::new())
    }

    /// Builds a well-sorted application of the operation named `name`.
    ///
    /// This is the checked, name-based convenience used by tests and
    /// examples; hot paths construct [`Term::App`] directly.
    ///
    /// # Errors
    ///
    /// Returns an error if the operation is unknown, the arity is wrong, or
    /// an argument has the wrong sort.
    pub fn apply(&self, name: &str, args: Vec<Term>) -> Result<Term> {
        let op = self.op_named(name)?;
        let info = self.op(op);
        if info.arity() != args.len() {
            return Err(CoreError::ArityMismatch {
                op: name.into(),
                expected: info.arity(),
                found: args.len(),
            });
        }
        for (i, (arg, &expected)) in args.iter().zip(info.args()).enumerate() {
            let found = arg.sort(self)?;
            if found != expected {
                return Err(CoreError::SortMismatch {
                    context: format!("argument {} of {}", i + 1, name),
                    expected: self.sort(expected).name().into(),
                    found: self.sort(found).name().into(),
                });
            }
        }
        Ok(Term::App(op, args))
    }

    /// Number of declared sorts (including built-ins).
    pub fn sort_count(&self) -> usize {
        self.sorts.len()
    }

    /// Number of declared operations (including built-ins).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_sig() -> (Signature, SortId, SortId) {
        let mut sig = Signature::new();
        let queue = sig.add_sort("Queue").unwrap();
        let item = sig.add_sort("Item").unwrap();
        sig.add_ctor("NEW", vec![], queue).unwrap();
        sig.add_ctor("ADD", vec![queue, item], queue).unwrap();
        sig.add_op("FRONT", vec![queue], item).unwrap();
        sig.add_op("REMOVE", vec![queue], queue).unwrap();
        sig.add_op("IS_EMPTY?", vec![queue], sig.bool_sort())
            .unwrap();
        (sig, queue, item)
    }

    #[test]
    fn builtins_exist_in_fresh_signature() {
        let sig = Signature::new();
        assert_eq!(sig.sort(sig.bool_sort()).name(), "Bool");
        assert!(sig.sort(sig.bool_sort()).is_builtin());
        assert_eq!(sig.op(sig.true_op()).name(), "true");
        assert_eq!(sig.op(sig.false_op()).name(), "false");
        assert!(sig.op(sig.true_op()).is_constructor());
        assert_eq!(sig.op(sig.true_op()).result(), sig.bool_sort());
    }

    #[test]
    fn duplicate_declarations_are_rejected() {
        let mut sig = Signature::new();
        sig.add_sort("Queue").unwrap();
        assert_eq!(
            sig.add_sort("Queue"),
            Err(CoreError::DuplicateSort {
                name: "Queue".into()
            })
        );
        assert!(sig.add_sort("Bool").is_err());
        let q = sig.find_sort("Queue").unwrap();
        sig.add_op("FRONT", vec![q], q).unwrap();
        assert!(sig.add_op("FRONT", vec![q], q).is_err());
        assert!(sig.add_ctor("true", vec![], q).is_err());
        sig.add_var("q", q).unwrap();
        assert!(sig.add_var("q", q).is_err());
    }

    #[test]
    fn lookup_by_name_and_id_agree() {
        let (sig, queue, _) = queue_sig();
        let add = sig.find_op("ADD").unwrap();
        assert_eq!(sig.op(add).name(), "ADD");
        assert_eq!(sig.op(add).args(), &[queue, sig.find_sort("Item").unwrap()]);
        assert_eq!(sig.op(add).result(), queue);
        assert!(sig.find_op("POP").is_none());
        assert!(matches!(
            sig.op_named("POP"),
            Err(CoreError::Unknown {
                kind: "operation",
                ..
            })
        ));
    }

    #[test]
    fn constructor_classification() {
        let (sig, queue, _) = queue_sig();
        let ctors: Vec<_> = sig
            .constructors_of(queue)
            .map(|op| sig.op(op).name().to_owned())
            .collect();
        assert_eq!(ctors, vec!["NEW", "ADD"]);
        // REMOVE ranges over Queue but is not a constructor.
        let with_result: Vec<_> = sig
            .ops_with_result(queue)
            .map(|op| sig.op(op).name().to_owned())
            .collect();
        assert_eq!(with_result, vec!["NEW", "ADD", "REMOVE"]);
    }

    #[test]
    fn apply_checks_arity_and_sorts() {
        let (sig, _, _) = queue_sig();
        let new = sig.apply("NEW", vec![]).unwrap();
        let added = sig.apply("ADD", vec![new.clone(), sig.tt()]);
        // Item != Bool
        assert!(matches!(added, Err(CoreError::SortMismatch { .. })));
        assert!(matches!(
            sig.apply("NEW", vec![sig.tt()]),
            Err(CoreError::ArityMismatch { .. })
        ));
        let front = sig.apply("FRONT", vec![new]).unwrap();
        assert_eq!(front.sort(&sig).unwrap(), sig.find_sort("Item").unwrap());
    }

    #[test]
    fn counts_track_declarations() {
        let (sig, _, _) = queue_sig();
        assert_eq!(sig.sort_count(), 3); // Bool, Queue, Item
        assert_eq!(sig.op_count(), 7); // true, false + 5 queue ops
        assert_eq!(sig.var_count(), 0);
    }
}
