//! Error types for specification construction and term well-formedness.

use std::error::Error;
use std::fmt;

/// Errors raised while building signatures and specifications or while
/// checking terms and axioms for well-sortedness.
///
/// Every variant carries enough human-readable context (names, not raw ids)
/// to be shown directly to a specification author.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A sort with this name was already declared in the signature.
    DuplicateSort {
        /// The offending sort name.
        name: String,
    },
    /// An operation with this name was already declared.
    ///
    /// Operation names are unique per signature: the paper's specifications
    /// never overload, and unique names keep diagnostics unambiguous.
    DuplicateOp {
        /// The offending operation name.
        name: String,
    },
    /// A variable with this name was already declared.
    DuplicateVar {
        /// The offending variable name.
        name: String,
    },
    /// A name lookup failed.
    Unknown {
        /// What kind of entity was looked up (`"sort"`, `"operation"`, `"variable"`).
        kind: &'static str,
        /// The name that could not be resolved.
        name: String,
    },
    /// An operation was applied to the wrong number of arguments.
    ArityMismatch {
        /// The operation's name.
        op: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments actually supplied.
        found: usize,
    },
    /// A term's sort did not match the sort required by its context.
    SortMismatch {
        /// Human-readable description of the context, e.g.
        /// `"argument 2 of ADD"` or `"both sides of axiom q4"`.
        context: String,
        /// Name of the sort required by the context.
        expected: String,
        /// Name of the sort actually found.
        found: String,
    },
    /// An axiom is structurally unusable as a left-to-right rewrite rule.
    IllFormedAxiom {
        /// The axiom's label.
        label: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A specification-level invariant was violated (e.g. a constructor was
    /// declared for a parameter sort).
    InvalidSpec {
        /// What is wrong with the specification.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateSort { name } => {
                write!(f, "sort `{name}` is declared more than once")
            }
            CoreError::DuplicateOp { name } => {
                write!(f, "operation `{name}` is declared more than once")
            }
            CoreError::DuplicateVar { name } => {
                write!(f, "variable `{name}` is declared more than once")
            }
            CoreError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            CoreError::ArityMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "operation `{op}` expects {expected} argument(s) but was given {found}"
            ),
            CoreError::SortMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "sort mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            CoreError::IllFormedAxiom { label, reason } => {
                write!(f, "axiom `{label}` is ill-formed: {reason}")
            }
            CoreError::InvalidSpec { reason } => write!(f, "invalid specification: {reason}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CoreError::ArityMismatch {
            op: "ADD".into(),
            expected: 2,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "operation `ADD` expects 2 argument(s) but was given 3"
        );

        let e = CoreError::SortMismatch {
            context: "argument 1 of FRONT".into(),
            expected: "Queue".into(),
            found: "Item".into(),
        };
        assert!(e.to_string().contains("argument 1 of FRONT"));
        assert!(e.to_string().contains("`Queue`"));
    }

    #[test]
    fn error_trait_object_is_usable() {
        fn takes_err(_: &dyn Error) {}
        let e = CoreError::Unknown {
            kind: "sort",
            name: "Qeue".into(),
        };
        takes_err(&e);
        assert_eq!(e.to_string(), "unknown sort `Qeue`");
    }
}
