//! Error types for specification construction and term well-formedness.

use std::error::Error;
use std::fmt;

/// Errors raised while building signatures and specifications or while
/// checking terms and axioms for well-sortedness.
///
/// Every variant carries enough human-readable context (names, not raw ids)
/// to be shown directly to a specification author.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A sort with this name was already declared in the signature.
    DuplicateSort {
        /// The offending sort name.
        name: String,
    },
    /// An operation with this name was already declared.
    ///
    /// Operation names are unique per signature: the paper's specifications
    /// never overload, and unique names keep diagnostics unambiguous.
    DuplicateOp {
        /// The offending operation name.
        name: String,
    },
    /// A variable with this name was already declared.
    DuplicateVar {
        /// The offending variable name.
        name: String,
    },
    /// A name lookup failed.
    Unknown {
        /// What kind of entity was looked up (`"sort"`, `"operation"`, `"variable"`).
        kind: &'static str,
        /// The name that could not be resolved.
        name: String,
    },
    /// An operation was applied to the wrong number of arguments.
    ArityMismatch {
        /// The operation's name.
        op: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments actually supplied.
        found: usize,
    },
    /// A term's sort did not match the sort required by its context.
    SortMismatch {
        /// Human-readable description of the context, e.g.
        /// `"argument 2 of ADD"` or `"both sides of axiom q4"`.
        context: String,
        /// Name of the sort required by the context.
        expected: String,
        /// Name of the sort actually found.
        found: String,
    },
    /// An axiom is structurally unusable as a left-to-right rewrite rule.
    IllFormedAxiom {
        /// The axiom's label.
        label: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A specification-level invariant was violated (e.g. a constructor was
    /// declared for a parameter sort).
    InvalidSpec {
        /// What is wrong with the specification.
        reason: String,
    },
    /// An id table outgrew the 32-bit id space. Ids are `u32` indices;
    /// allocating past `u32::MAX` entries would silently alias two
    /// distinct entries, so allocation fails loudly instead.
    CapacityExceeded {
        /// Which table overflowed (`"sort"`, `"operation"`, `"variable"`,
        /// `"term"`).
        kind: &'static str,
        /// The maximum number of representable entries.
        limit: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateSort { name } => {
                write!(f, "sort `{name}` is declared more than once")
            }
            CoreError::DuplicateOp { name } => {
                write!(f, "operation `{name}` is declared more than once")
            }
            CoreError::DuplicateVar { name } => {
                write!(f, "variable `{name}` is declared more than once")
            }
            CoreError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            CoreError::ArityMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "operation `{op}` expects {expected} argument(s) but was given {found}"
            ),
            CoreError::SortMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "sort mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            CoreError::IllFormedAxiom { label, reason } => {
                write!(f, "axiom `{label}` is ill-formed: {reason}")
            }
            CoreError::InvalidSpec { reason } => write!(f, "invalid specification: {reason}"),
            CoreError::CapacityExceeded { kind, limit } => write!(
                f,
                "{kind} table is full: at most {limit} {kind} ids can be allocated"
            ),
        }
    }
}

impl Error for CoreError {}

/// Structural faults inside the checking/rewriting machinery itself —
/// as opposed to [`CoreError`], which reports problems with the *input*.
///
/// The engines are total by construction: a worker panic, a poisoned
/// lock, or a dangling id must surface as a value the caller can report,
/// not as an `unwrap` that tears the process down. Every variant carries
/// enough context to identify the offending work item.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A worker thread panicked while processing a work item (twice: the
    /// original run and one retry on a fresh worker).
    WorkerPanicked {
        /// Human-readable description of the work item (an operation
        /// name, a rendered probe term, a pair of axiom labels).
        item: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A lock was poisoned by a panicking holder and the protected data
    /// could not be trusted.
    LockPoisoned {
        /// What the lock protects.
        what: String,
    },
    /// An id did not resolve in the signature it was used against (a
    /// term crossed specification boundaries).
    DanglingId {
        /// What kind of id (`"operation"`, `"sort"`, `"variable"`).
        kind: &'static str,
        /// The raw index.
        index: usize,
    },
    /// A whole analysis phase failed before any per-item work began
    /// (e.g. critical-pair enumeration rejected the specification).
    PhaseFailed {
        /// The phase that failed (`"pairs"`, `"probes"`, `"completeness"`).
        phase: &'static str,
        /// The underlying error, rendered.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanicked { item, message } => {
                write!(f, "worker panicked on {item}: {message}")
            }
            EngineError::LockPoisoned { what } => {
                write!(f, "lock poisoned: {what}")
            }
            EngineError::DanglingId { kind, index } => {
                write!(f, "{kind} id #{index} does not belong to this signature")
            }
            EngineError::PhaseFailed { phase, message } => {
                write!(f, "{phase} phase failed: {message}")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CoreError::ArityMismatch {
            op: "ADD".into(),
            expected: 2,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "operation `ADD` expects 2 argument(s) but was given 3"
        );

        let e = CoreError::SortMismatch {
            context: "argument 1 of FRONT".into(),
            expected: "Queue".into(),
            found: "Item".into(),
        };
        assert!(e.to_string().contains("argument 1 of FRONT"));
        assert!(e.to_string().contains("`Queue`"));
    }

    #[test]
    fn engine_errors_name_the_item() {
        let e = EngineError::WorkerPanicked {
            item: "operation `FRONT`".into(),
            message: "injected fault".into(),
        };
        assert_eq!(
            e.to_string(),
            "worker panicked on operation `FRONT`: injected fault"
        );
        let e = EngineError::DanglingId {
            kind: "operation",
            index: 9,
        };
        assert!(e.to_string().contains("#9"));
    }

    #[test]
    fn error_trait_object_is_usable() {
        fn takes_err(_: &dyn Error) {}
        let e = CoreError::Unknown {
            kind: "sort",
            name: "Qeue".into(),
        };
        takes_err(&e);
        assert_eq!(e.to_string(), "unknown sort `Qeue`");
    }
}
